//! Golden decision-trace comparison.
//!
//! Every golden suite used to carry its own ~60-line copy of the same
//! compare/refresh/artifact boilerplate; this module is the single
//! implementation. A golden check serializes the *decision-level*
//! subset of a trace (see `TraceEvent::is_decision`) to JSONL, drops a
//! copy under `target/experiments/traces/` for CI artifact upload, and
//! diffs it against the pinned file in `tests/golden/` at the workspace
//! root. Under `UPDATE_GOLDEN=1` the pinned file is rewritten instead —
//! decision changes are reviewed in the commit diff, never silent.

use iqpaths_trace::TraceEvent;
use std::fs;
use std::path::PathBuf;

/// Serializes the decision-level subset of a trace as JSONL.
pub fn decisions_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events.iter().filter(|e| e.is_decision()) {
        ev.write_jsonl(&mut out);
        out.push('\n');
    }
    out
}

/// Workspace root (this crate lives at `crates/testkit`).
fn workspace_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

/// `tests/golden/<name>` at the workspace root.
pub fn golden_path(name: &str) -> PathBuf {
    workspace_root().join("tests/golden").join(name)
}

/// `target/experiments/traces/<name>` at the workspace root.
pub fn artifact_path(name: &str) -> PathBuf {
    workspace_root()
        .join("target/experiments/traces")
        .join(name)
}

/// Compares (or, under `UPDATE_GOLDEN=1`, rewrites) the pinned decision
/// trace `tests/golden/<name>` against `events`. `refresh_cmd` names
/// the test binary to rerun, e.g. `cargo test --test golden_trace`.
///
/// # Panics
/// Panics when the trace has no decision events, when the golden file
/// is missing (outside refresh mode), or on the first divergent line —
/// with the refresh command in the message.
pub fn check_golden_trace(name: &str, refresh_cmd: &str, events: &[TraceEvent]) {
    let actual = decisions_jsonl(events);
    assert!(!actual.is_empty(), "{name}: empty decision trace");

    // Always drop a copy for CI artifact upload.
    let artifact = artifact_path(name);
    fs::create_dir_all(artifact.parent().unwrap()).unwrap();
    fs::write(&artifact, &actual).unwrap();

    let golden = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::create_dir_all(golden.parent().unwrap()).unwrap();
        fs::write(&golden, &actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&golden).unwrap_or_else(|e| {
        panic!(
            "{name}: missing golden {} ({e}); generate it with \
             UPDATE_GOLDEN=1 {refresh_cmd}",
            golden.display()
        )
    });
    if actual != expected {
        let first_diff = actual
            .lines()
            .zip(expected.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| actual.lines().count().min(expected.lines().count()));
        panic!(
            "{name}: decision trace diverged from golden at line {} \
             (actual {} vs expected {} lines).\n  actual:   {}\n  expected: {}\n\
             If the decision change is intended, refresh with \
             UPDATE_GOLDEN=1 {refresh_cmd}",
            first_diff + 1,
            actual.lines().count(),
            expected.lines().count(),
            actual.lines().nth(first_diff).unwrap_or("<eof>"),
            expected.lines().nth(first_diff).unwrap_or("<eof>"),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_subset_serializes_only_decisions() {
        let evs = [
            TraceEvent::WindowStart {
                at_ns: 5,
                window_ns: 1_000_000_000,
                remapped: true,
            },
            TraceEvent::Enqueue {
                at_ns: 6,
                stream: 0,
                seq: 1,
                bytes: 10,
            },
        ];
        let out = decisions_jsonl(&evs);
        let kept: Vec<&str> = out.lines().collect();
        assert_eq!(kept.len(), evs.iter().filter(|e| e.is_decision()).count());
    }

    #[test]
    fn paths_land_in_workspace_dirs() {
        assert!(golden_path("x.jsonl").ends_with("tests/golden/x.jsonl"));
        assert!(artifact_path("x.jsonl").ends_with("target/experiments/traces/x.jsonl"));
    }
}
