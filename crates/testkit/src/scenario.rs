//! Canonical fault scenarios and the guarantee-conformance runner.
//!
//! A conformance case is `(seed, CdfMode, FaultScenario)`: the runner
//! generates a seeded 3-path topology, drives a fixed 3-stream mix
//! (probabilistic, violation-bound, best-effort) through PGOS under the
//! scenario's [`FaultSchedule`], and checks the paper's two guarantees
//! empirically:
//!
//! * **Lemma 1** — in each *eligible* monitor window, the probabilistic
//!   stream receives its required bandwidth; the success frequency must
//!   be at least `p` up to a Hoeffding tolerance ([`BernoulliCheck`]).
//! * **Lemma 2** — the violation-bound stream's deadline misses per
//!   eligible window must average at most its bound up to a
//!   range-scaled Hoeffding tolerance ([`BoundedMeanCheck`]).
//!
//! Eligible windows exclude an adaptation transient of
//! [`ConformanceConfig::settle_secs`] after every capacity change
//! point: the lemmas assume the monitored CDF describes the current
//! path, which takes one rolling window of probes to become true again
//! after an abrupt shift. Everything else — including windows *during*
//! a settled fault — is checked, because keeping guarantees while
//! degraded is the paper's claim.

use crate::stats::{BernoulliCheck, BoundedMeanCheck};
use crate::topology::TopologyGen;
use iqpaths_apps::workload::FramedSource;
use iqpaths_core::mapping::MappingMode;
use iqpaths_core::scheduler::{Pgos, PgosConfig};
use iqpaths_core::stream::{Guarantee, StreamSpec};
use iqpaths_core::traits::MultipathScheduler;
use iqpaths_middleware::report::RunReport;
use iqpaths_middleware::runtime::{run_traced_counted, RuntimeConfig};
use iqpaths_middleware::sharded::{run_sharded_with, ShardExecution};
use iqpaths_overlay::node::CdfMode;
use iqpaths_overlay::planner::{PlannerKind, ProbeBudget};
use iqpaths_simnet::fault::{Fault, FaultSchedule};
use iqpaths_trace::{shared, InMemorySink, TraceEvent, TraceHandle};

/// The scenario axis of the conformance sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultScenario {
    /// No injected faults (the regression baseline).
    NoFault,
    /// Path 0 repeatedly degrades to 25% capacity (10 s down out of
    /// every 30 s) with probe loss while degraded and a probe-reporting
    /// delay on path 1.
    Flap,
    /// Path 0 fully blocked for 12 s mid-run, plus a client-side
    /// reordering burst on path 1.
    Blackout,
    /// A shared relay node carrying paths 0 and 1 leaves twice for 4 s,
    /// blacking out both paths simultaneously.
    Churn,
    /// Loss-heavy, *uncorrelated* silent failure: exactly one path at a
    /// time silently eats every data packet ([`Fault::TransitLoss`] at
    /// probability 1), rotating through the paths on a 30 s cycle so
    /// some path is dead at every instant of the measured run. Transit
    /// loss is invisible to probing and is not a capacity change, so
    /// every window stays lemma-eligible — the scenario erasure-coded
    /// path diversity exists to win.
    Uncorrelated,
    /// Loss-heavy, *correlated* silent failure: twice per run, every
    /// path simultaneously eats all data packets for 6 s (a shared
    /// upstream black hole). No coding shape with all lanes on the
    /// affected paths can decode through it, so path diversity buys
    /// nothing over whole-path-first placement here — the honest
    /// counter-case to [`FaultScenario::Uncorrelated`].
    Correlated,
}

impl FaultScenario {
    /// The classic conformance sweep axis. The loss-heavy pair
    /// ([`FaultScenario::Uncorrelated`] / [`FaultScenario::Correlated`])
    /// is deliberately *not* here: it exists for the mapping-mode
    /// (`diversity`) sweep, and adding it to `ALL` would silently grow
    /// every existing conformance matrix and invalidate pinned
    /// expansion counts.
    pub const ALL: [FaultScenario; 4] = [
        FaultScenario::NoFault,
        FaultScenario::Flap,
        FaultScenario::Blackout,
        FaultScenario::Churn,
    ];

    /// The loss-heavy scenario pair of the `diversity` sweep, in sweep
    /// order: the uncorrelated rotation coding survives, then the
    /// correlated black hole it cannot.
    pub const LOSSY: [FaultScenario; 2] = [FaultScenario::Uncorrelated, FaultScenario::Correlated];

    /// Scenario name for reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::NoFault => "no-fault",
            FaultScenario::Flap => "flap",
            FaultScenario::Blackout => "blackout",
            FaultScenario::Churn => "churn",
            FaultScenario::Uncorrelated => "uncorrelated",
            FaultScenario::Correlated => "correlated",
        }
    }

    /// Inverse of [`FaultScenario::name`], for sweep cells that carry
    /// the scenario as a canonical string.
    pub fn by_name(name: &str) -> Option<FaultScenario> {
        FaultScenario::ALL
            .into_iter()
            .chain(FaultScenario::LOSSY)
            .find(|s| s.name() == name)
    }

    /// The scenario's fault script over absolute emulation time
    /// `[start, end)` (start = end of warm-up). Requires ≥ 2 paths.
    pub fn schedule(self, start: f64, end: f64) -> FaultSchedule {
        let span = end - start;
        assert!(span > 40.0, "scenarios need a reasonable run length");
        let mut s = FaultSchedule::new();
        match self {
            FaultScenario::NoFault => {}
            FaultScenario::Flap => {
                s.flap(0, 0.25, start + 5.0, end - 5.0, 30.0, 10.0);
                // Degraded telemetry rides along: probes on path 0 drop
                // 30% while the path flaps, path 1 reports 0.5 s late.
                s.push(start + 5.0, Fault::ProbeLoss { path: 0, prob: 0.3 });
                s.push(end - 5.0, Fault::ProbeLoss { path: 0, prob: 0.0 });
                s.push(
                    start + 5.0,
                    Fault::ProbeDelay {
                        path: 1,
                        delay: 0.5,
                    },
                );
            }
            FaultScenario::Blackout => {
                let mid = start + span / 2.0;
                s.blackout(0, mid - 6.0, mid + 6.0);
                s.push(
                    mid,
                    Fault::ReorderBurst {
                        path: 1,
                        span: 3.0,
                        jitter: 0.002,
                    },
                );
            }
            FaultScenario::Churn => {
                let q1 = start + span * 0.25;
                let q3 = start + span * 0.75;
                s.churn(&[0, 1], q1, q1 + 4.0);
                s.churn(&[0, 1], q3, q3 + 4.0);
            }
            FaultScenario::Uncorrelated => {
                // Paths 0, 1, 2 take turns eating every data packet:
                // path p is dead during the p-th 10 s third of each
                // 30 s cycle, so exactly one path is down at all times.
                let cycle = 30.0;
                let phase = cycle / 3.0;
                let cycles = (span / cycle).ceil() as usize;
                for c in 0..cycles {
                    for p in 0..3 {
                        let from = start + c as f64 * cycle + p as f64 * phase;
                        let to = (from + phase).min(end);
                        if from < end {
                            s.transit_loss(p, from, to, 1.0);
                        }
                    }
                }
            }
            FaultScenario::Correlated => {
                let q1 = start + span * 0.25;
                let q3 = start + span * 0.75;
                for p in 0..3 {
                    s.transit_loss(p, q1, q1 + 6.0, 1.0);
                    s.transit_loss(p, q3, q3 + 6.0, 1.0);
                }
            }
        }
        s
    }
}

/// One conformance case.
#[derive(Debug, Clone, Copy)]
pub struct ConformanceConfig {
    /// Topology + runtime seed.
    pub seed: u64,
    /// Monitoring CDF backend under test.
    pub mode: CdfMode,
    /// Fault scenario.
    pub scenario: FaultScenario,
    /// Measured duration in seconds (after warm-up).
    pub duration: f64,
    /// Monitoring-only warm-up in seconds.
    pub warmup: f64,
    /// Confidence level of every statistical assertion.
    pub confidence: f64,
    /// Adaptation transient excluded after each capacity change point.
    pub settle_secs: f64,
    /// Data-plane shards the runtime splits the stream table across
    /// (1 = the classic serial event loop, byte-identical to releases
    /// before the controller/data-plane split).
    pub shards: usize,
    /// Probe planner driving the main monitoring loop
    /// ([`PlannerKind::Periodic`] = the legacy schedule).
    pub planner: PlannerKind,
    /// Probe budget the planner spends ([`ProbeBudget::Unlimited`] =
    /// the legacy probe-everything rate).
    pub probe_budget: ProbeBudget,
    /// PGOS resource-mapping mode under test
    /// ([`MappingMode::Pgos`] = classic whole-path-first placement,
    /// bit-identical to every pre-Diversity release).
    pub mapping: MappingMode,
}

impl ConformanceConfig {
    /// The standard case: 120 s measured, 20 s warm-up, 99% confidence,
    /// 10 s settle, serial runtime.
    pub fn new(seed: u64, mode: CdfMode, scenario: FaultScenario) -> Self {
        Self {
            seed,
            mode,
            scenario,
            duration: 120.0,
            warmup: 20.0,
            confidence: 0.99,
            settle_secs: 10.0,
            shards: 1,
            planner: PlannerKind::Periodic,
            probe_budget: ProbeBudget::Unlimited,
            mapping: MappingMode::Pgos,
        }
    }

    /// Same case on the sharded runtime.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Same case under a non-default probe planner and budget.
    #[must_use]
    pub fn with_planner(mut self, planner: PlannerKind, budget: ProbeBudget) -> Self {
        self.planner = planner;
        self.probe_budget = budget;
        self
    }

    /// Same case under a different PGOS resource-mapping mode.
    #[must_use]
    pub fn with_mapping(mut self, mapping: MappingMode) -> Self {
        self.mapping = mapping;
        self
    }
}

/// Verdict of one lemma check on one stream.
#[derive(Debug, Clone)]
pub struct LemmaOutcome {
    /// Stream name.
    pub stream: String,
    /// `"lemma1"` or `"lemma2"`.
    pub kind: &'static str,
    /// Observed statistic: success fraction `p̂` (Lemma 1) or mean
    /// misses per window (Lemma 2).
    pub observed: f64,
    /// Guaranteed value: `p` (at least) or the miss bound (at most).
    pub target: f64,
    /// Hoeffding tolerance applied.
    pub epsilon: f64,
    /// Eligible windows backing the check.
    pub windows: u64,
    /// Whether the check passed within tolerance.
    pub pass: bool,
}

/// Full outcome of one conformance case.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Scenario name.
    pub scenario: &'static str,
    /// CDF-mode name.
    pub mode: &'static str,
    /// The underlying run report (deterministic per seed).
    pub report: RunReport,
    /// Indices of the eligible monitor windows.
    pub eligible_windows: Vec<usize>,
    /// One outcome per guaranteed stream.
    pub outcomes: Vec<LemmaOutcome>,
    /// Per-path main-loop probe spend, published by the runtime's
    /// probe planner (summed across workers on the sharded runtime).
    pub probe_counts: Vec<u64>,
    /// Per-stream fraction of offered data delivered before its
    /// deadline — the headline metric of the `diversity` sweep. Coded
    /// streams count at decode-complete granularity
    /// (`CodingStats::delivered_before_deadline`); uncoded streams
    /// count on-time deadline deliveries over offered packets.
    pub before_deadline: Vec<f64>,
}

impl ConformanceReport {
    /// True when every lemma check passed.
    pub fn all_pass(&self) -> bool {
        self.outcomes.iter().all(|o| o.pass)
    }

    /// Markdown table rows (one per outcome) for EXPERIMENTS.md.
    pub fn table_rows(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.3} | {:.3} | {:.3} | {} | {} |\n",
                self.scenario,
                self.mode,
                o.stream,
                o.kind,
                o.observed,
                o.target,
                o.epsilon,
                o.windows,
                if o.pass { "pass" } else { "FAIL" },
            ));
        }
        out
    }

    /// Header matching [`ConformanceReport::table_rows`].
    pub fn table_header() -> &'static str {
        "| scenario | mode | stream | check | observed | target | epsilon | windows | verdict |\n\
         |---|---|---|---|---|---|---|---|---|\n"
    }
}

/// Short name of a [`CdfMode`].
pub fn mode_name(mode: CdfMode) -> &'static str {
    match mode {
        CdfMode::Exact => "exact",
        CdfMode::Histogram { .. } => "histogram",
        CdfMode::Rolling => "rolling",
        CdfMode::Sketch { .. } => "sketch",
    }
}

/// The three CDF backends the conformance suite sweeps.
pub fn sweep_modes() -> [CdfMode; 3] {
    [
        CdfMode::Exact,
        CdfMode::Rolling,
        CdfMode::Sketch { markers: 33 },
    ]
}

/// Resolves a canonical backend name to its standard sweep
/// configuration: `exact`, `rolling`, `sketch33` (Figure 4's 33-marker
/// P²-style sketch), or `histogram512` (the ablation-study histogram at
/// 512 bins over the Emulab link capacity). Inverse of
/// `iqpaths_middleware::knobs::cdf_mode_name` over these four.
pub fn mode_by_name(name: &str) -> Option<CdfMode> {
    Some(match name {
        "exact" => CdfMode::Exact,
        "rolling" => CdfMode::Rolling,
        "sketch33" => CdfMode::Sketch { markers: 33 },
        "histogram512" => CdfMode::Histogram {
            bins: 512,
            resolution: 200,
            max_bw: iqpaths_traces::EMULAB_LINK_CAPACITY,
        },
        _ => return None,
    })
}

/// Monitor windows not overlapping `[τ, τ + settle_secs)` for any
/// capacity change point `τ` (times absolute; window `w` spans
/// `[warmup + w·window_secs, warmup + (w+1)·window_secs)`). The lemmas
/// assume the monitored CDF describes the current path, which takes one
/// rolling window of probes to become true again after an abrupt
/// capacity shift — everything else, including windows *during* a
/// settled fault, is checked.
pub fn eligible_windows(
    n_windows: usize,
    warmup: f64,
    window_secs: f64,
    changes: &[f64],
    settle_secs: f64,
) -> Vec<usize> {
    (0..n_windows)
        .filter(|&w| {
            let a = warmup + w as f64 * window_secs;
            let b = a + window_secs;
            changes.iter().all(|&t| b <= t || t + settle_secs <= a)
        })
        .collect()
}

/// Lemma 1/2 verdicts for one run: per guaranteed stream in `specs`,
/// checks the report's per-window throughput series (Lemma 1,
/// [`BernoulliCheck`]) or the attributed per-window deadline-miss
/// matrix (Lemma 2, [`BoundedMeanCheck`]) over the eligible windows.
/// `misses[stream][window]` must be indexed like `specs`; best-effort
/// streams produce no outcome. Shared by the single-tenant conformance
/// runner and the graph-scale many-tenant family, so every sweep
/// anywhere in the workspace applies the identical statistical test.
pub fn lemma_outcomes(
    specs: &[StreamSpec],
    report: &RunReport,
    misses: &[Vec<f64>],
    eligible: &[usize],
    monitor_window_secs: f64,
    confidence: f64,
) -> Vec<LemmaOutcome> {
    specs
        .iter()
        .enumerate()
        .filter_map(|(i, spec)| match spec.guarantee {
            Guarantee::Probabilistic { p } => {
                let series = &report.streams[i].throughput_series;
                let successes = eligible
                    .iter()
                    .filter(|&&w| series.get(w).copied().unwrap_or(0.0) >= spec.required_bw - 1.0)
                    .count() as u64;
                let check = BernoulliCheck {
                    successes,
                    trials: eligible.len() as u64,
                };
                Some(LemmaOutcome {
                    stream: spec.name.clone(),
                    kind: "lemma1",
                    observed: check.fraction(),
                    target: p,
                    epsilon: check.epsilon(confidence),
                    windows: check.trials,
                    pass: check.meets_at_least(p, confidence),
                })
            }
            Guarantee::ViolationBound {
                max_expected_misses,
            } => {
                let samples: Vec<f64> = eligible.iter().map(|&w| misses[i][w]).collect();
                // One window's misses are bounded by its packet budget.
                let range =
                    spec.required_bw * monitor_window_secs / (8.0 * spec.packet_bytes as f64);
                let check = BoundedMeanCheck::from_samples(&samples, range);
                Some(LemmaOutcome {
                    stream: spec.name.clone(),
                    kind: "lemma2",
                    observed: check.mean(),
                    target: max_expected_misses,
                    epsilon: check.epsilon(confidence),
                    windows: check.n,
                    pass: check.meets_at_most(max_expected_misses, confidence),
                })
            }
            Guarantee::BestEffort => None,
        })
        .collect()
}

/// The fixed stream mix: one probabilistic (8 Mbps at p = 0.9), one
/// violation-bound (6 Mbps, ≤ 30 expected misses/window), one
/// best-effort (4 Mbps nominal). Total guaranteed demand (14 Mbps)
/// stays feasible on any single generated path, so churn never makes
/// admission impossible.
pub fn conformance_streams() -> Vec<StreamSpec> {
    vec![
        StreamSpec::probabilistic(0, "prob", 8.0e6, 0.9, 1250),
        StreamSpec::violation_bound(1, "vbound", 6.0e6, 30.0, 1250),
        StreamSpec::best_effort(2, "bulk", 4.0e6, 1250),
    ]
}

/// Runs one conformance case end to end (parallel workers when
/// `cfg.shards > 1`).
pub fn run_conformance(cfg: ConformanceConfig) -> ConformanceReport {
    run_case(cfg, TraceHandle::null(), ShardExecution::Parallel)
}

/// [`run_conformance`] with an explicit worker-execution strategy —
/// the equivalence suite runs the same plan serially and in parallel
/// and bit-compares the merged reports.
pub fn run_conformance_with(
    cfg: ConformanceConfig,
    execution: ShardExecution,
) -> ConformanceReport {
    run_case(cfg, TraceHandle::null(), execution)
}

/// Runs one conformance case with an in-memory decision trace attached,
/// returning the report and the full event log. This is the entry point
/// of the trace-invariant and golden-trace suites: same deterministic
/// run as [`run_conformance`], plus the evidence to check it against.
pub fn run_conformance_traced(cfg: ConformanceConfig) -> (ConformanceReport, Vec<TraceEvent>) {
    run_conformance_traced_with(cfg, ShardExecution::Parallel)
}

/// [`run_conformance_traced`] with an explicit worker-execution
/// strategy.
pub fn run_conformance_traced_with(
    cfg: ConformanceConfig,
    execution: ShardExecution,
) -> (ConformanceReport, Vec<TraceEvent>) {
    let (sink, trace) = shared(InMemorySink::unbounded());
    let report = run_case(cfg, trace, execution);
    let events = sink.borrow().events();
    (report, events)
}

fn run_case(
    cfg: ConformanceConfig,
    trace: TraceHandle,
    execution: ShardExecution,
) -> ConformanceReport {
    let horizon = cfg.warmup + cfg.duration + 10.0;
    let gen = TopologyGen {
        seed: cfg.seed,
        horizon,
        ..TopologyGen::default()
    };
    let paths = gen.build();
    let specs = conformance_streams();
    let frames: Vec<u32> = specs
        .iter()
        .map(|s| (s.required_bw.max(s.weight) / (8.0 * 25.0)).round() as u32)
        .collect();
    let workload = FramedSource::new(specs.clone(), frames, 25.0, cfg.duration);
    let rt = RuntimeConfig {
        warmup_secs: cfg.warmup,
        history_samples: 100,
        seed: cfg.seed,
        cdf_mode: cfg.mode,
        shards: cfg.shards.max(1),
        planner: cfg.planner,
        probe_budget: cfg.probe_budget,
        ..RuntimeConfig::default()
    };
    let faults = cfg.scenario.schedule(cfg.warmup, cfg.warmup + cfg.duration);

    // Per-stream, per-window deadline-miss attribution via the sink.
    // Shard merge replays deliveries in virtual-time order, so the
    // attribution is identical whichever runtime produced them.
    let n_windows = (cfg.duration / rt.monitor_window_secs).ceil() as usize;
    let mut misses = vec![vec![0.0f64; n_windows]; specs.len()];
    let mut on_delivery = |d: &iqpaths_middleware::DeliveryEvent| {
        if d.missed_deadline {
            let w = ((d.delivered / rt.monitor_window_secs) as usize).min(n_windows - 1);
            misses[d.stream][w] += 1.0;
        }
    };
    let pgos_cfg = PgosConfig {
        mapping_mode: cfg.mapping,
        ..PgosConfig::default()
    };
    let (report, probe_counts) = if rt.shards > 1 {
        let factory = |specs: Vec<StreamSpec>, n_paths: usize| -> Box<dyn MultipathScheduler> {
            Box::new(Pgos::new(pgos_cfg, specs, n_paths))
        };
        let outcome = run_sharded_with(
            &paths,
            Box::new(workload),
            &factory,
            rt,
            cfg.duration,
            &faults,
            trace,
            &mut on_delivery,
            execution,
        );
        (outcome.report, outcome.probe_counts)
    } else {
        let scheduler = Pgos::new(pgos_cfg, specs.clone(), paths.len());
        run_traced_counted(
            &paths,
            Box::new(workload),
            Box::new(scheduler),
            rt,
            cfg.duration,
            &faults,
            trace,
            &mut on_delivery,
        )
    };

    let changes = faults.capacity_change_times();
    let eligible_windows = eligible_windows(
        n_windows,
        cfg.warmup,
        rt.monitor_window_secs,
        &changes,
        cfg.settle_secs,
    );
    let outcomes = lemma_outcomes(
        &specs,
        &report,
        &misses,
        &eligible_windows,
        rt.monitor_window_secs,
        cfg.confidence,
    );

    // Delivered-before-deadline ratio, offered-normalized so silent
    // transit loss shows up (a lost packet is neither delivered nor a
    // recorded miss). Coded streams credit decode-recovered blocks.
    let before_deadline = report
        .streams
        .iter()
        .enumerate()
        .map(|(i, s)| match &s.coding {
            Some(c) => c.delivered_before_deadline(),
            None => {
                let m = &report.metrics.streams[i];
                let offered = m.enqueued + m.queue_dropped;
                if offered == 0 {
                    0.0
                } else {
                    (s.deadline_packets - s.deadline_misses) as f64 / offered as f64
                }
            }
        })
        .collect();

    ConformanceReport {
        scenario: cfg.scenario.name(),
        mode: mode_name(cfg.mode),
        report,
        eligible_windows,
        outcomes,
        probe_counts,
        before_deadline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_schedules_are_deterministic_scripts() {
        for sc in FaultScenario::ALL {
            let a = sc.schedule(20.0, 140.0);
            let b = sc.schedule(20.0, 140.0);
            assert_eq!(a, b);
            if sc == FaultScenario::NoFault {
                assert!(a.is_empty());
            } else {
                assert!(!a.is_empty(), "{} has faults", sc.name());
            }
        }
    }

    #[test]
    fn churn_hits_two_paths() {
        let s = FaultScenario::Churn.schedule(20.0, 140.0);
        assert_eq!(s.capacity_timeline(0).len(), 4);
        assert_eq!(s.capacity_timeline(1).len(), 4);
        assert!(s.capacity_timeline(2).is_empty());
    }

    #[test]
    fn eligible_windows_exclude_settle_zones() {
        // Cheap case: short no-fault run just to exercise plumbing is
        // still ~seconds; use the blackout schedule directly instead.
        let s = FaultScenario::Blackout.schedule(20.0, 140.0);
        let changes = s.capacity_change_times();
        assert_eq!(changes.len(), 2);
        let (down, up) = (changes[0], changes[1]);
        assert!((up - down - 12.0).abs() < 1e-9);
        // A window inside [down, down + settle) must be excluded by the
        // filter logic replicated here.
        let settle = 10.0;
        let w_in = (down - 20.0) as usize + 1;
        let a = 20.0 + w_in as f64;
        let b = a + 1.0;
        assert!(!changes.iter().all(|&t| b <= t || t + settle <= a));
    }

    #[test]
    fn lossy_scenarios_are_named_but_not_in_the_classic_sweep() {
        for sc in FaultScenario::LOSSY {
            assert_eq!(FaultScenario::by_name(sc.name()), Some(sc));
            assert!(!FaultScenario::ALL.contains(&sc));
        }
    }

    #[test]
    fn uncorrelated_keeps_exactly_one_path_dead() {
        let s = FaultScenario::Uncorrelated.schedule(20.0, 140.0);
        // Transit loss is not a capacity change: every window stays
        // lemma-eligible.
        assert!(s.capacity_change_times().is_empty());
        let inj = iqpaths_simnet::fault::FaultInjector::new(&s, 3, 1);
        for t in [25.0, 47.0, 75.0, 103.0, 135.0] {
            let dead: Vec<usize> = (0..3)
                .filter(|&p| (0..64).all(|seq| inj.transit_lost(p, 0, seq, t)))
                .collect();
            assert_eq!(dead.len(), 1, "t={t} dead={dead:?}");
        }
    }

    #[test]
    fn correlated_kills_every_path_at_once() {
        let s = FaultScenario::Correlated.schedule(20.0, 140.0);
        assert!(s.capacity_change_times().is_empty());
        let inj = iqpaths_simnet::fault::FaultInjector::new(&s, 3, 1);
        // q1 = 50, q3 = 110: inside a burst all paths drop everything;
        // between bursts nothing does (prob 0 draws never lose).
        for p in 0..3 {
            assert!(inj.transit_lost(p, 0, 0, 52.0));
            assert!(inj.transit_lost(p, 0, 0, 112.0));
            assert!(!inj.transit_lost(p, 0, 0, 80.0));
        }
    }

    #[test]
    fn stream_mix_has_all_three_guarantee_kinds() {
        let specs = conformance_streams();
        assert!(matches!(
            specs[0].guarantee,
            Guarantee::Probabilistic { .. }
        ));
        assert!(matches!(
            specs[1].guarantee,
            Guarantee::ViolationBound { .. }
        ));
        assert!(matches!(specs[2].guarantee, Guarantee::BestEffort));
        // Frame sizes divide exactly at 25 fps (no rate rounding).
        for s in &specs {
            let bw = s.required_bw.max(s.weight);
            assert_eq!(bw % (8.0 * 25.0), 0.0);
        }
    }
}
