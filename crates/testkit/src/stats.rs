//! Tolerance-based statistical assertions.
//!
//! Conformance tests compare *empirical* delivery frequencies against
//! the *analytical* guarantees of Lemmas 1 and 2. A naive
//! `assert!(observed >= target)` is flaky by construction: with `n`
//! windows the empirical frequency fluctuates by O(1/√n) around its
//! expectation even when the guarantee holds exactly. The helpers here
//! make every assertion carry an explicit confidence tolerance:
//!
//! * [`hoeffding_epsilon`] — the distribution-free deviation bound
//!   `ε = sqrt(ln(1/δ) / 2n)`: the mean of `n` independent `[0, 1]`
//!   variables is within `ε` of its expectation with probability
//!   `≥ 1 − δ`. A check fails only when the observation is *more than
//!   `ε` worse* than the guarantee, so a correct implementation fails
//!   with probability at most `δ`.
//! * [`wilson_interval`] — the binomial proportion interval (tighter
//!   than Hoeffding for small/large `p̂`), reported alongside for
//!   diagnostics.
//! * [`BernoulliCheck`] / [`BoundedMeanCheck`] — the two assertion
//!   shapes the conformance suite uses: "this probability is at least
//!   p" (Lemma 1) and "this mean is at most b" (Lemma 2).

/// Hoeffding deviation bound for the mean of `n` independent `[0, 1]`
/// samples at confidence `1 − δ`: `ε = sqrt(ln(1/δ) / 2n)`.
///
/// # Panics
/// Panics unless `n > 0` and `confidence ∈ (0, 1)`.
pub fn hoeffding_epsilon(n: u64, confidence: f64) -> f64 {
    assert!(n > 0, "need at least one sample");
    assert!(
        (0.0..1.0).contains(&confidence) && confidence > 0.0,
        "confidence must be in (0, 1)"
    );
    let delta = 1.0 - confidence;
    ((1.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Inverse of the standard normal CDF (the probit function), via
/// Acklam's rational approximation (|relative error| < 1.15e-9).
///
/// # Panics
/// Panics unless `p ∈ (0, 1)`.
pub fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit needs p in (0, 1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -probit(1.0 - p)
    }
}

/// Wilson score interval for a binomial proportion at the given
/// two-sided confidence: `(lower, upper)`.
///
/// # Panics
/// Panics unless `trials > 0`, `successes <= trials`, and
/// `confidence ∈ (0, 1)`.
pub fn wilson_interval(successes: u64, trials: u64, confidence: f64) -> (f64, f64) {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes must not exceed trials");
    let z = probit(1.0 - (1.0 - confidence) / 2.0);
    let n = trials as f64;
    let phat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = phat + z2 / (2.0 * n);
    let spread = z * (phat * (1.0 - phat) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((center - spread) / denom).max(0.0),
        ((center + spread) / denom).min(1.0),
    )
}

/// An empirical success frequency checked against a lower bound — the
/// Lemma 1 shape: "the per-window delivery probability is at least p".
///
/// ```
/// use iqpaths_testkit::BernoulliCheck;
///
/// // 93 of 100 windows met the guarantee; the promise was p = 0.9.
/// let check = BernoulliCheck { successes: 93, trials: 100 };
/// assert_eq!(check.fraction(), 0.93);
///
/// // At 99% confidence the Hoeffding tolerance absorbs sampling noise,
/// // so an observation slightly below target would still pass …
/// assert!(check.meets_at_least(0.9, 0.99));
/// assert!(BernoulliCheck { successes: 85, trials: 100 }.meets_at_least(0.9, 0.99));
/// // … but a gross violation of the promise fails.
/// assert!(!BernoulliCheck { successes: 60, trials: 100 }.meets_at_least(0.9, 0.99));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BernoulliCheck {
    /// Windows (trials) that met the guarantee.
    pub successes: u64,
    /// Eligible windows (trials) observed.
    pub trials: u64,
}

impl BernoulliCheck {
    /// Empirical success fraction `p̂`.
    pub fn fraction(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Hoeffding tolerance at this sample size.
    pub fn epsilon(&self, confidence: f64) -> f64 {
        hoeffding_epsilon(self.trials.max(1), confidence)
    }

    /// One-sided check: passes unless `p̂` is more than `ε` below
    /// `target_p`. A conformant implementation fails with probability
    /// at most `1 − confidence`; gross violations always fail.
    pub fn meets_at_least(&self, target_p: f64, confidence: f64) -> bool {
        self.trials > 0 && self.fraction() + self.epsilon(confidence) >= target_p
    }

    /// Wilson interval of the underlying proportion (diagnostics).
    pub fn wilson(&self, confidence: f64) -> (f64, f64) {
        wilson_interval(self.successes, self.trials.max(1), confidence)
    }
}

/// An empirical mean of `[0, range]` samples checked against an upper
/// bound — the Lemma 2 shape: "expected violations per window are at
/// most b".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedMeanCheck {
    /// Sum of the observed samples.
    pub sum: f64,
    /// Number of samples.
    pub n: u64,
    /// A-priori upper bound on one sample (packets per window for
    /// violation counts).
    pub range: f64,
}

impl BoundedMeanCheck {
    /// Builds the check from per-window samples.
    ///
    /// # Panics
    /// Panics on a non-positive range.
    pub fn from_samples(samples: &[f64], range: f64) -> Self {
        assert!(range > 0.0, "range must be positive");
        Self {
            sum: samples.iter().sum(),
            n: samples.len() as u64,
            range,
        }
    }

    /// Empirical mean.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Hoeffding tolerance scaled to the sample range.
    pub fn epsilon(&self, confidence: f64) -> f64 {
        self.range * hoeffding_epsilon(self.n.max(1), confidence)
    }

    /// One-sided check: passes unless the mean exceeds
    /// `bound + range · ε`.
    pub fn meets_at_most(&self, bound: f64, confidence: f64) -> bool {
        self.n > 0 && self.mean() <= bound + self.epsilon(confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_shrinks_with_n() {
        let e100 = hoeffding_epsilon(100, 0.99);
        let e400 = hoeffding_epsilon(400, 0.99);
        assert!(e400 < e100);
        // sqrt(ln 100 / 200) ≈ 0.1517
        assert!((e100 - 0.1517).abs() < 1e-3, "e100={e100}");
        // Quadrupling n halves epsilon.
        assert!((e100 / e400 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn probit_matches_known_quantiles() {
        assert!(probit(0.5).abs() < 1e-9);
        assert!((probit(0.975) - 1.959_964).abs() < 1e-5);
        assert!((probit(0.995) - 2.575_829).abs() < 1e-5);
        assert!((probit(0.025) + 1.959_964).abs() < 1e-5);
        // Tail branch.
        assert!((probit(0.001) + 3.090_232).abs() < 1e-5);
    }

    #[test]
    fn wilson_brackets_the_point_estimate() {
        let (lo, hi) = wilson_interval(90, 100, 0.95);
        assert!(lo < 0.9 && 0.9 < hi);
        assert!(lo > 0.80 && hi < 0.97, "({lo}, {hi})");
        // Degenerate proportions stay in [0, 1].
        let (lo0, _) = wilson_interval(0, 10, 0.99);
        let (_, hi1) = wilson_interval(10, 10, 0.99);
        assert!(lo0 >= 0.0 && hi1 <= 1.0);
    }

    #[test]
    fn bernoulli_check_tolerates_sampling_noise() {
        // 87/100 against p = 0.9: within the 99%-confidence tolerance
        // (ε ≈ 0.15), so no flaky failure.
        let c = BernoulliCheck {
            successes: 87,
            trials: 100,
        };
        assert!(c.meets_at_least(0.9, 0.99));
        // A gross violation still fails.
        let bad = BernoulliCheck {
            successes: 40,
            trials: 100,
        };
        assert!(!bad.meets_at_least(0.9, 0.99));
        // Zero trials never pass.
        let none = BernoulliCheck {
            successes: 0,
            trials: 0,
        };
        assert!(!none.meets_at_least(0.1, 0.99));
    }

    #[test]
    fn bounded_mean_check_scales_tolerance_by_range() {
        let samples = vec![2.0, 0.0, 1.0, 3.0]; // mean 1.5
        let c = BoundedMeanCheck::from_samples(&samples, 100.0);
        assert!((c.mean() - 1.5).abs() < 1e-12);
        assert!(c.meets_at_most(1.0, 0.99), "within range-scaled ε");
        let tight = BoundedMeanCheck::from_samples(&samples, 1.0e-6);
        assert!(!tight.meets_at_most(1.0, 0.99), "tiny range, tight ε");
    }
}
