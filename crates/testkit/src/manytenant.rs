//! Graph-scale many-tenant scenario families.
//!
//! The paper's testbed has one server→client pair over two disjoint
//! paths; a production overlay has hundreds of tenants routed over a
//! large random graph, contending for shared bottlenecks. This module
//! compiles that setting down to the machinery the rest of the
//! workspace already trusts:
//!
//! 1. a seeded [`GraphGen`] builds the overlay ([`GraphModel::Waxman`]
//!    or preferential attachment),
//! 2. each tenant draws a `(src, dst)` pair and routes over its k
//!    cheapest loopless paths (`OverlayGraph::k_shortest_paths`),
//! 3. shared-bottleneck contention becomes extra ambient cross traffic
//!    on every edge (each tenant sees the *other* tenants' guaranteed
//!    demand, spread evenly over their routes),
//! 4. a flash-crowd wave degrades the hottest edge mid-run and relay
//!    churn blacks out every path through the highest-degree node, both
//!    expressed as ordinary [`FaultSchedule`] scripts with local path
//!    indices,
//! 5. each tenant then runs the standard serial or sharded runtime
//!    unchanged, and its guarantees are checked with the same
//!    [`lemma_outcomes`] the single-tenant conformance suite uses.
//!
//! Determinism: the graph, the tenant pairs, the contention map and
//! every per-tenant runtime seed are salted-splitmix64 derivations of
//! [`ScalabilityConfig::seed`], so a scalability report is a pure
//! function of its config — tenants may be re-run in any order (or not
//! at all) without perturbing each other.

use crate::scenario::{eligible_windows, lemma_outcomes, mode_name, LemmaOutcome};
use crate::topology::{GeneratedGraph, GraphGen, GraphModel};
use iqpaths_apps::workload::FramedSource;
use iqpaths_core::scheduler::{Pgos, PgosConfig};
use iqpaths_core::stream::StreamSpec;
use iqpaths_core::traits::MultipathScheduler;
use iqpaths_middleware::runtime::{run_traced, RuntimeConfig};
use iqpaths_middleware::sharded::{run_sharded_with, ShardExecution};
use iqpaths_overlay::graph::OverlayNodeId;
use iqpaths_overlay::node::CdfMode;
use iqpaths_overlay::path::OverlayPath;
use iqpaths_simnet::fault::{salted_seed, Fault, FaultSchedule};
use iqpaths_trace::{shared, InMemorySink, TraceEvent, TraceHandle};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Streams each tenant drives (fixed, so global trace stream ids are
/// `tenant · STREAMS_PER_TENANT + local`).
pub const STREAMS_PER_TENANT: usize = 4;

/// One graph-scale scalability case.
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityConfig {
    /// Master seed: graph, tenant pairs, contention and per-tenant
    /// runtime streams all derive from it.
    pub seed: u64,
    /// Overlay node count.
    pub nodes: usize,
    /// Tenant ((src, dst) pair) count.
    pub tenants: usize,
    /// Paths requested per tenant (Yen's k; a tenant gets fewer only
    /// when the graph has fewer simple paths).
    pub k: usize,
    /// Wiring model.
    pub model: GraphModel,
    /// Monitoring CDF backend.
    pub mode: CdfMode,
    /// Data-plane shards per tenant runtime.
    pub shards: usize,
    /// Measured duration in seconds (after warm-up, ≥ 12).
    pub duration: f64,
    /// Monitoring-only warm-up in seconds.
    pub warmup: f64,
    /// Confidence level of every statistical assertion.
    pub confidence: f64,
    /// Adaptation transient excluded after each capacity change point.
    pub settle_secs: f64,
    /// Inject the flash-crowd wave on the hottest edge.
    pub waves: bool,
    /// Inject relay churn at the highest-degree node.
    pub churn: bool,
}

impl ScalabilityConfig {
    /// The standard case: 24 s measured, 6 s warm-up, 99% confidence,
    /// 4 s settle, serial runtime, waves + churn on.
    pub fn new(seed: u64, model: GraphModel, nodes: usize, tenants: usize, k: usize) -> Self {
        Self {
            seed,
            nodes,
            tenants,
            k,
            model,
            mode: CdfMode::Exact,
            shards: 1,
            duration: 24.0,
            warmup: 6.0,
            confidence: 0.99,
            settle_secs: 4.0,
            waves: true,
            churn: true,
        }
    }

    /// Same case on the sharded runtime.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// The per-tenant stream mix: one probabilistic (2 Mbps at
    /// p = 0.9), one violation-bound (1.5 Mbps, ≤ 30 expected
    /// misses/window), two best-effort (0.5 Mbps each) — four streams
    /// so a 4-shard data plane is a real partition. Guaranteed demand
    /// (3.5 Mbps) is tiny against generated edge capacities
    /// (≥ 200 Mbps), so conformance is about adaptation, not admission.
    pub fn tenant_streams() -> Vec<StreamSpec> {
        vec![
            StreamSpec::probabilistic(0, "prob", 2.0e6, 0.9, 1250),
            StreamSpec::violation_bound(1, "vbound", 1.5e6, 30.0, 1250),
            StreamSpec::best_effort(2, "bulk-a", 0.5e6, 1250),
            StreamSpec::best_effort(3, "bulk-b", 0.5e6, 1250),
        ]
    }
}

/// Guaranteed (admission-relevant) demand of one tenant in bits/s.
fn tenant_guaranteed_bw() -> f64 {
    ScalabilityConfig::tenant_streams()
        .iter()
        .map(|s| s.required_bw)
        .sum()
}

/// One tenant's compiled slice of the scenario.
#[derive(Debug, Clone)]
pub struct CompiledTenant {
    /// Tenant index.
    pub tenant: usize,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// The k cheapest loopless routes, Yen order.
    pub routes: Vec<Vec<OverlayNodeId>>,
    /// One overlay path per route (contention-adjusted links).
    pub paths: Vec<OverlayPath>,
    /// Flash-crowd + churn script over this tenant's local path
    /// indices.
    pub faults: FaultSchedule,
}

/// The fully compiled scenario: graph + per-tenant paths/faults, ready
/// for the unchanged serial/sharded runtime.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// The generated overlay.
    pub graph: GeneratedGraph,
    /// Per-tenant slices, tenant order.
    pub tenants: Vec<CompiledTenant>,
    /// The flash-crowd target (highest aggregate guaranteed demand),
    /// when any tenant routes exist.
    pub hot_edge: Option<(usize, usize)>,
    /// The churn target (highest-degree node).
    pub hub: Option<usize>,
}

/// Compiles a config down to graph + per-tenant paths and fault
/// scripts. Pure function of the config.
///
/// # Panics
/// Panics on zero tenants, `k = 0`, fewer than 8 nodes, or a measured
/// duration under 12 s (the wave/churn script needs room).
pub fn compile(cfg: &ScalabilityConfig) -> CompiledScenario {
    assert!(cfg.tenants >= 1, "need at least one tenant");
    assert!(cfg.k >= 1, "need at least one path per tenant");
    assert!(cfg.nodes >= 8, "graph-scale scenarios start at 8 nodes");
    assert!(cfg.duration >= 12.0, "wave/churn script needs >= 12 s");
    let horizon = cfg.warmup + cfg.duration + 10.0;
    let graph = GraphGen {
        seed: cfg.seed,
        nodes: cfg.nodes,
        model: cfg.model,
        horizon,
        ..GraphGen::default()
    }
    .build();

    // Tenant pairs + routes.
    let mut rng = StdRng::seed_from_u64(salted_seed(cfg.seed, "tenants"));
    let mut routed: Vec<(usize, usize, Vec<Vec<OverlayNodeId>>)> = (0..cfg.tenants)
        .map(|_| {
            let src = rng.gen_range(0..cfg.nodes);
            let mut dst = rng.gen_range(0..cfg.nodes);
            while dst == src {
                dst = rng.gen_range(0..cfg.nodes);
            }
            let routes =
                graph
                    .graph
                    .k_shortest_paths(OverlayNodeId(src), OverlayNodeId(dst), cfg.k);
            assert!(!routes.is_empty(), "generated graphs are connected");
            (src, dst, routes)
        })
        .collect();

    // Shared-bottleneck contention: every tenant's guaranteed demand,
    // spread evenly over its routes, accumulates on each edge the route
    // crosses. A tenant's own contribution is subtracted back out when
    // its links are compiled — it already injects that load itself.
    let per_tenant_bw = tenant_guaranteed_bw();
    let mut demand: BTreeMap<(usize, usize), f64> = BTreeMap::new();
    for (_, _, routes) in &routed {
        let share = per_tenant_bw / routes.len() as f64;
        for route in routes {
            for w in route.windows(2) {
                *demand.entry(GeneratedGraph::key(w[0], w[1])).or_insert(0.0) += share;
            }
        }
    }
    let hot_edge = demand
        .iter()
        .fold(
            None,
            |best: Option<((usize, usize), f64)>, (&e, &d)| match best {
                Some((_, bd)) if bd >= d => best,
                _ => Some((e, d)),
            },
        )
        .map(|(e, _)| e);
    let hub = (0..cfg.nodes)
        .fold(None, |best: Option<(usize, usize)>, n| {
            let deg = graph.graph.neighbors(OverlayNodeId(n)).len();
            match best {
                Some((_, bd)) if bd >= deg => best,
                _ => Some((n, deg)),
            }
        })
        .map(|(n, _)| n);

    // Wave/churn script instants (absolute emulation time).
    let wave_down = cfg.warmup + 0.25 * cfg.duration;
    let wave_up = wave_down + 0.25 * cfg.duration;
    let churn_down = cfg.warmup + 0.70 * cfg.duration;
    // Churn span stays within the settle window so fully-blocked
    // tenants lose those windows to the eligibility filter instead of
    // failing their lemmas on them.
    let churn_up = churn_down + cfg.settle_secs.min(3.0);

    let tenants = routed
        .drain(..)
        .enumerate()
        .map(|(t, (src, dst, routes))| {
            let share = per_tenant_bw / routes.len() as f64;
            let paths: Vec<OverlayPath> = routes
                .iter()
                .enumerate()
                .map(|(j, route)| {
                    let links = route
                        .windows(2)
                        .map(|w| {
                            let key = GeneratedGraph::key(w[0], w[1]);
                            let cap = graph.edges[&key].capacity;
                            // Ambient contention = everyone else's load
                            // on this edge, as a utilization fraction
                            // (clamped so residual never collapses
                            // without an injected fault).
                            let own = if route_crosses(route, key) {
                                share
                            } else {
                                0.0
                            };
                            let extra = ((demand[&key] - own) / cap).clamp(0.0, 0.25);
                            graph.link(w[0], w[1], extra)
                        })
                        .collect();
                    OverlayPath::new(j, format!("T{t}-P{j}"), links)
                })
                .collect();

            let mut faults = FaultSchedule::new();
            if cfg.waves {
                if let Some(hot) = hot_edge {
                    for (j, route) in routes.iter().enumerate() {
                        if route_crosses(route, hot) {
                            // The flash crowd shaves 15% off the hot
                            // edge: mild enough that settled-degrade
                            // windows still meet the lemmas (the
                            // paper's keep-guarantees-while-degraded
                            // claim), abrupt enough to force a CDF
                            // re-learn.
                            faults.push(
                                wave_down,
                                Fault::Degrade {
                                    path: j,
                                    factor: 0.85,
                                },
                            );
                            faults.push(wave_up, Fault::Restore { path: j });
                        }
                    }
                }
            }
            if cfg.churn {
                if let Some(hub) = hub {
                    let through: Vec<usize> = routes
                        .iter()
                        .enumerate()
                        .filter(|(_, r)| r.iter().any(|n| n.0 == hub))
                        .map(|(j, _)| j)
                        .collect();
                    if !through.is_empty() {
                        faults.churn(&through, churn_down, churn_up);
                    }
                }
            }

            CompiledTenant {
                tenant: t,
                src,
                dst,
                routes,
                paths,
                faults,
            }
        })
        .collect();

    CompiledScenario {
        graph,
        tenants,
        hot_edge,
        hub,
    }
}

fn route_crosses(route: &[OverlayNodeId], key: (usize, usize)) -> bool {
    route
        .windows(2)
        .any(|w| GeneratedGraph::key(w[0], w[1]) == key)
}

/// Per-tenant verdicts and throughput totals.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// Tenant index.
    pub tenant: usize,
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Routes the tenant actually got.
    pub routes: usize,
    /// Lemma 1/2 verdicts (one per guaranteed stream).
    pub outcomes: Vec<LemmaOutcome>,
    /// Packets delivered across all four streams.
    pub delivered_packets: u64,
    /// Bytes delivered across all four streams.
    pub delivered_bytes: u64,
}

/// Outcome of one scalability case.
#[derive(Debug, Clone)]
pub struct ScalabilityReport {
    /// Model name (`waxman` / `ba`).
    pub model: &'static str,
    /// CDF-mode name.
    pub mode: &'static str,
    /// Node count.
    pub nodes: usize,
    /// Requested k.
    pub k: usize,
    /// Shards per tenant runtime.
    pub shards: usize,
    /// Pinned generator hash of the underlying graph.
    pub graph_hash: u64,
    /// Undirected edge count.
    pub edges: usize,
    /// Sum of per-tenant route counts.
    pub total_routes: usize,
    /// Per-tenant outcomes, tenant order.
    pub tenants: Vec<TenantOutcome>,
    /// Packets delivered across all tenants.
    pub total_packets: u64,
    /// Bytes delivered across all tenants.
    pub total_bytes: u64,
    /// Delivered packets per *virtual* second (deterministic; the
    /// wall-clock rate belongs in `BENCH_scalability.json`, never in a
    /// checked table).
    pub virtual_pps: f64,
}

impl ScalabilityReport {
    /// True when every tenant passed every lemma check.
    pub fn all_pass(&self) -> bool {
        self.tenants
            .iter()
            .all(|t| t.outcomes.iter().all(|o| o.pass))
    }

    /// Tenants with at least one failing check.
    pub fn failing_tenants(&self) -> Vec<usize> {
        self.tenants
            .iter()
            .filter(|t| t.outcomes.iter().any(|o| !o.pass))
            .map(|t| t.tenant)
            .collect()
    }

    /// Canonical full rendering — every deterministic field of every
    /// tenant — used by the equivalence suite to bit-compare serial vs
    /// sharded executions.
    pub fn render(&self) -> String {
        let mut out = format!(
            "scalability model={} mode={} nodes={} k={} shards={} graph={:#018x} edges={} routes={}\n",
            self.model,
            self.mode,
            self.nodes,
            self.k,
            self.shards,
            self.graph_hash,
            self.edges,
            self.total_routes,
        );
        for t in &self.tenants {
            out.push_str(&format!(
                "tenant {} n{}->n{} routes={} pkts={} bytes={}",
                t.tenant, t.src, t.dst, t.routes, t.delivered_packets, t.delivered_bytes
            ));
            for o in &t.outcomes {
                out.push_str(&format!(
                    " | {} {} obs={:.6} tgt={:.6} eps={:.6} w={} {}",
                    o.kind,
                    o.stream,
                    o.observed,
                    o.target,
                    o.epsilon,
                    o.windows,
                    if o.pass { "pass" } else { "FAIL" },
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "total packets={} bytes={} vpps={:.3}\n",
            self.total_packets, self.total_bytes, self.virtual_pps
        ));
        out
    }
}

/// Runs one scalability case end to end (parallel data-plane workers
/// when `cfg.shards > 1`).
pub fn run_scalability(cfg: ScalabilityConfig) -> ScalabilityReport {
    run_scalability_with(cfg, ShardExecution::Parallel)
}

/// [`run_scalability`] with an explicit worker-execution strategy —
/// the equivalence suite runs the same compiled scenario serially and
/// in parallel and bit-compares the rendered reports.
pub fn run_scalability_with(
    cfg: ScalabilityConfig,
    execution: ShardExecution,
) -> ScalabilityReport {
    run_compiled(cfg, execution, None)
}

/// Runs one scalability case with an in-memory decision trace attached:
/// per-tenant event streams are concatenated in tenant order with local
/// stream ids remapped to `tenant · STREAMS_PER_TENANT + local`, so one
/// golden file pins the whole scenario.
pub fn run_scalability_traced(cfg: ScalabilityConfig) -> (ScalabilityReport, Vec<TraceEvent>) {
    let mut events = Vec::new();
    let report = run_compiled(cfg, ShardExecution::Parallel, Some(&mut events));
    (report, events)
}

fn run_compiled(
    cfg: ScalabilityConfig,
    execution: ShardExecution,
    mut trace_out: Option<&mut Vec<TraceEvent>>,
) -> ScalabilityReport {
    let compiled = compile(&cfg);
    let specs = ScalabilityConfig::tenant_streams();
    let frames: Vec<u32> = specs
        .iter()
        .map(|s| (s.required_bw.max(s.weight) / (8.0 * 25.0)).round() as u32)
        .collect();

    let mut tenants = Vec::with_capacity(compiled.tenants.len());
    let mut total_packets = 0u64;
    let mut total_bytes = 0u64;
    let mut total_routes = 0usize;
    for ct in &compiled.tenants {
        let rt = RuntimeConfig {
            warmup_secs: cfg.warmup,
            history_samples: 50,
            seed: salted_seed(cfg.seed, &format!("tenant:{}", ct.tenant)),
            cdf_mode: cfg.mode,
            shards: cfg.shards.max(1),
            ..RuntimeConfig::default()
        };
        let workload = FramedSource::new(specs.clone(), frames.clone(), 25.0, cfg.duration);
        let n_windows = (cfg.duration / rt.monitor_window_secs).ceil() as usize;
        let mut misses = vec![vec![0.0f64; n_windows]; specs.len()];
        let mut on_delivery = |d: &iqpaths_middleware::DeliveryEvent| {
            if d.missed_deadline {
                let w = ((d.delivered / rt.monitor_window_secs) as usize).min(n_windows - 1);
                misses[d.stream][w] += 1.0;
            }
        };
        let (sink, trace) = if trace_out.is_some() {
            let (sink, trace) = shared(InMemorySink::unbounded());
            (Some(sink), trace)
        } else {
            (None, TraceHandle::null())
        };
        let report = if rt.shards > 1 {
            let factory = |specs: Vec<StreamSpec>, n_paths: usize| -> Box<dyn MultipathScheduler> {
                Box::new(Pgos::new(PgosConfig::default(), specs, n_paths))
            };
            run_sharded_with(
                &ct.paths,
                Box::new(workload),
                &factory,
                rt,
                cfg.duration,
                &ct.faults,
                trace,
                &mut on_delivery,
                execution,
            )
            .report
        } else {
            let scheduler = Pgos::new(PgosConfig::default(), specs.clone(), ct.paths.len());
            run_traced(
                &ct.paths,
                Box::new(workload),
                Box::new(scheduler),
                rt,
                cfg.duration,
                &ct.faults,
                trace,
                &mut on_delivery,
            )
        };
        if let (Some(sink), Some(out)) = (sink, trace_out.as_deref_mut()) {
            let base = (ct.tenant * STREAMS_PER_TENANT) as u32;
            out.extend(
                sink.borrow()
                    .events()
                    .into_iter()
                    .map(|e| e.map_stream(|s| base + s)),
            );
        }

        let changes = ct.faults.capacity_change_times();
        let eligible = eligible_windows(
            n_windows,
            cfg.warmup,
            rt.monitor_window_secs,
            &changes,
            cfg.settle_secs,
        );
        let outcomes = lemma_outcomes(
            &specs,
            &report,
            &misses,
            &eligible,
            rt.monitor_window_secs,
            cfg.confidence,
        );
        let delivered_packets: u64 = report.streams.iter().map(|s| s.delivered_packets).sum();
        let delivered_bytes: u64 = report.streams.iter().map(|s| s.delivered_bytes).sum();
        total_packets += delivered_packets;
        total_bytes += delivered_bytes;
        total_routes += ct.routes.len();
        tenants.push(TenantOutcome {
            tenant: ct.tenant,
            src: ct.src,
            dst: ct.dst,
            routes: ct.routes.len(),
            outcomes,
            delivered_packets,
            delivered_bytes,
        });
    }

    ScalabilityReport {
        model: cfg.model.canon(),
        mode: mode_name(cfg.mode),
        nodes: cfg.nodes,
        k: cfg.k,
        shards: cfg.shards.max(1),
        graph_hash: compiled.graph.graph_hash(),
        edges: compiled.graph.edges.len(),
        total_routes,
        tenants,
        total_packets,
        total_bytes,
        virtual_pps: total_packets as f64 / cfg.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ScalabilityConfig {
        ScalabilityConfig {
            duration: 12.0,
            warmup: 3.0,
            ..ScalabilityConfig::new(5, GraphModel::by_name("waxman").unwrap(), 16, 2, 2)
        }
    }

    #[test]
    fn compile_is_deterministic() {
        let a = compile(&small());
        let b = compile(&small());
        assert_eq!(a.graph.graph_hash(), b.graph.graph_hash());
        assert_eq!(a.hot_edge, b.hot_edge);
        assert_eq!(a.hub, b.hub);
        assert_eq!(a.tenants.len(), 2);
        for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(ta.routes, tb.routes);
            assert_eq!(ta.faults, tb.faults);
            assert_eq!(ta.src, tb.src);
            assert_eq!(ta.dst, tb.dst);
        }
    }

    #[test]
    fn tenants_route_over_their_k_paths() {
        let c = compile(&small());
        for t in &c.tenants {
            assert!(!t.routes.is_empty() && t.routes.len() <= 2);
            assert_eq!(t.paths.len(), t.routes.len());
            for (route, path) in t.routes.iter().zip(&t.paths) {
                assert_eq!(route.first().unwrap().0, t.src);
                assert_eq!(route.last().unwrap().0, t.dst);
                assert_eq!(path.links().len(), route.len() - 1);
            }
        }
    }

    #[test]
    fn small_case_passes_and_renders_stably() {
        let cfg = small();
        let a = run_scalability(cfg);
        let b = run_scalability(cfg);
        assert_eq!(a.render(), b.render());
        assert!(a.all_pass(), "failing tenants: {:?}", a.failing_tenants());
        assert!(a.total_packets > 0);
        assert_eq!(a.tenants.len(), 2);
        for t in &a.tenants {
            // One lemma 1 + one lemma 2 verdict per tenant.
            assert_eq!(t.outcomes.len(), 2);
        }
    }

    #[test]
    fn traced_run_remaps_stream_ids_per_tenant() {
        let (report, events) = run_scalability_traced(small());
        assert!(report.all_pass());
        let max_stream = events.iter().filter_map(|e| e.stream()).max().unwrap_or(0);
        assert!(max_stream >= STREAMS_PER_TENANT as u32);
        assert!(max_stream < (2 * STREAMS_PER_TENANT) as u32);
    }
}
