//! # iqpaths-testkit — statistical guarantee-conformance harness
//!
//! The paper's claims are probabilistic: Lemma 1 promises each
//! guaranteed stream its bandwidth in at least a fraction `p` of
//! scheduling windows, Lemma 2 bounds the *expected* deadline
//! violations per window. Testing such claims with point assertions is
//! either vacuous or flaky. This crate provides the pieces that make
//! them testable deterministically and with explicit tolerances:
//!
//! * [`stats`] — Hoeffding/Wilson confidence machinery and the two
//!   assertion shapes ([`stats::BernoulliCheck`],
//!   [`stats::BoundedMeanCheck`]) whose false-failure probability is
//!   capped by the configured confidence.
//! * [`topology`] — seeded random multi-path overlay generation
//!   ([`topology::TopologyGen`]), so conformance holds on families of
//!   networks rather than one hand-picked testbed.
//! * [`scenario`] — the canonical fault scenarios
//!   ([`scenario::FaultScenario`]: no-fault, flap, blackout, churn)
//!   built on `iqpaths_simnet::fault`, and the end-to-end runner
//!   ([`scenario::run_conformance`]) behind the `conformance`
//!   integration suite and the `fault_sweep` bench binary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod scenario;
pub mod stats;
pub mod topology;

pub use scenario::{
    conformance_streams, mode_name, run_conformance, sweep_modes, ConformanceConfig,
    ConformanceReport, FaultScenario, LemmaOutcome,
};
pub use stats::{hoeffding_epsilon, probit, wilson_interval, BernoulliCheck, BoundedMeanCheck};
pub use topology::TopologyGen;
