//! # iqpaths-testkit — statistical guarantee-conformance harness
//!
//! The paper's claims are probabilistic: Lemma 1 promises each
//! guaranteed stream its bandwidth in at least a fraction `p` of
//! scheduling windows, Lemma 2 bounds the *expected* deadline
//! violations per window. Testing such claims with point assertions is
//! either vacuous or flaky. This crate provides the pieces that make
//! them testable deterministically and with explicit tolerances:
//!
//! * [`stats`] — Hoeffding/Wilson confidence machinery and the two
//!   assertion shapes ([`stats::BernoulliCheck`],
//!   [`stats::BoundedMeanCheck`]) whose false-failure probability is
//!   capped by the configured confidence.
//! * [`topology`] — seeded random multi-path overlay generation
//!   ([`topology::TopologyGen`]), so conformance holds on families of
//!   networks rather than one hand-picked testbed.
//! * [`scenario`] — the canonical fault scenarios
//!   ([`scenario::FaultScenario`]: no-fault, flap, blackout, churn)
//!   built on `iqpaths_simnet::fault`, and the end-to-end runner
//!   ([`scenario::run_conformance`]) behind the `conformance`
//!   integration suite and the `fault_sweep` bench binary.
//! * [`invariants`] — streaming checkers over scheduling-decision
//!   traces ([`scenario::run_conformance_traced`]): packet
//!   conservation, virtual-deadline monotonicity, Table 1 precedence,
//!   exponential-backoff shape, and mapping freshness. These are exact
//!   (non-statistical) properties that must hold on every run.
//!
//! ## Paper artifact → code map
//!
//! | paper artifact | where it lives |
//! |---|---|
//! | Lemma 1 conformance (service probability) | [`scenario::lemma_outcomes`] "prob" stream |
//! | Lemma 2 conformance (violation bound) | [`scenario::lemma_outcomes`] "vbound" stream |
//! | §6 fault scenarios (+ silent-loss extensions) | [`scenario::FaultScenario`] |
//! | Table 1 precedence as a trace invariant | [`invariants::PrecedenceChecker`] |
//! | blocked-path exponential backoff | [`invariants::BackoffChecker`] |
//! | many-tenant scalability (DESIGN.md §13) | [`manytenant`] |
//! | statistical assertion machinery | [`stats`] |

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod golden;
pub mod invariants;
pub mod manytenant;
pub mod scenario;
pub mod stats;
pub mod topology;

pub use golden::{check_golden_trace, decisions_jsonl};
pub use invariants::{
    assert_invariants, check_all, BackoffChecker, ConservationChecker, DeadlineChecker,
    InvariantChecker, MappingFreshnessChecker, PrecedenceChecker, Violation,
};
pub use manytenant::{
    compile as compile_scalability, run_scalability, run_scalability_traced, run_scalability_with,
    ScalabilityConfig, ScalabilityReport, TenantOutcome, STREAMS_PER_TENANT,
};
pub use scenario::{
    conformance_streams, eligible_windows, lemma_outcomes, mode_by_name, mode_name,
    run_conformance, run_conformance_traced, run_conformance_traced_with, run_conformance_with,
    sweep_modes, ConformanceConfig, ConformanceReport, FaultScenario, LemmaOutcome,
};
pub use stats::{hoeffding_epsilon, probit, wilson_interval, BernoulliCheck, BoundedMeanCheck};
pub use topology::{GeneratedGraph, GraphGen, GraphModel, TopologyGen};
