//! Trace sinks and the shared handle components emit through.

use crate::event::TraceEvent;
use std::cell::RefCell;
use std::fmt;
use std::io::Write;
use std::rc::Rc;

/// Receives trace events. Implementations decide retention: discard
/// ([`NullSink`]), ring-buffer ([`InMemorySink`]), or serialize
/// ([`JsonlSink`]).
pub trait TraceSink {
    /// Consumes one event.
    fn emit(&mut self, ev: &TraceEvent);

    /// Flushes any buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// Discards everything. A [`TraceHandle`] built on it still pays the
/// dispatch; prefer [`TraceHandle::null`], which stores no sink at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&mut self, _ev: &TraceEvent) {}
}

/// A bounded ring buffer of events. When full, the oldest event is
/// overwritten and counted in [`InMemorySink::overwritten`].
#[derive(Debug, Clone)]
pub struct InMemorySink {
    buf: Vec<TraceEvent>,
    cap: usize,
    head: usize,
    total: u64,
}

impl InMemorySink {
    /// A ring holding at most `cap` events.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "ring needs positive capacity");
        Self {
            buf: Vec::new(),
            cap,
            head: 0,
            total: 0,
        }
    }

    /// A ring large enough that no practical run evicts (2^32 events).
    pub fn unbounded() -> Self {
        Self::with_capacity(u32::MAX as usize)
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever emitted into the sink.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events lost to ring overwrite.
    pub fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }
}

impl TraceSink for InMemorySink {
    fn emit(&mut self, ev: &TraceEvent) {
        self.total += 1;
        if self.buf.len() < self.cap {
            self.buf.push(*ev);
        } else {
            self.buf[self.head] = *ev;
            self.head = (self.head + 1) % self.cap;
        }
    }
}

/// Serializes each event as one JSON line into any [`Write`]r (a file,
/// a `Vec<u8>`, or [`std::io::sink`] for overhead measurement).
///
/// With `decisions_only`, the per-packet and per-probe data plane is
/// filtered out, leaving the compact decision trace the golden suite
/// pins (see [`TraceEvent::is_decision`]).
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    line: String,
    lines: u64,
    decisions_only: bool,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing every event to `w`.
    pub fn new(w: W) -> Self {
        Self {
            w,
            line: String::with_capacity(160),
            lines: 0,
            decisions_only: false,
        }
    }

    /// A sink writing only decision-level events to `w`.
    pub fn decisions_only(w: W) -> Self {
        Self {
            decisions_only: true,
            ..Self::new(w)
        }
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the underlying writer.
    pub fn into_inner(mut self) -> W {
        let _ = self.w.flush();
        self.w
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&mut self, ev: &TraceEvent) {
        if self.decisions_only && !ev.is_decision() {
            return;
        }
        self.line.clear();
        ev.write_jsonl(&mut self.line);
        self.line.push('\n');
        if self.w.write_all(self.line.as_bytes()).is_ok() {
            self.lines += 1;
        }
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// The cheap, cloneable emission handle components hold.
///
/// A null handle stores no sink: [`TraceHandle::emit`] then reduces to
/// an `Option` discriminant test, which is why `NullSink`-equivalent
/// runs show no measurable slowdown. Clones share the same sink, so
/// the scheduler, the probes, and the runtime all append to one
/// chronologically ordered stream (the event loop is single-threaded).
#[derive(Clone, Default)]
pub struct TraceHandle {
    sink: Option<Rc<RefCell<dyn TraceSink>>>,
}

impl TraceHandle {
    /// The disabled handle (no sink, near-zero emission cost).
    pub fn null() -> Self {
        Self { sink: None }
    }

    /// A handle owning a fresh sink. To read the sink back after a run,
    /// use [`shared`] instead.
    pub fn new<S: TraceSink + 'static>(sink: S) -> Self {
        Self {
            sink: Some(Rc::new(RefCell::new(sink))),
        }
    }

    /// A handle over an existing shared sink.
    pub fn from_shared<S: TraceSink + 'static>(sink: Rc<RefCell<S>>) -> Self {
        Self { sink: Some(sink) }
    }

    /// Whether a sink is attached. Producers gate any emission-only
    /// work (quantile digests, candidate scans) behind this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one event (no-op on a null handle).
    #[inline]
    pub fn emit(&self, ev: TraceEvent) {
        if let Some(s) = &self.sink {
            s.borrow_mut().emit(&ev);
        }
    }

    /// Flushes the sink, if any.
    pub fn flush(&self) {
        if let Some(s) = &self.sink {
            s.borrow_mut().flush();
        }
    }
}

impl fmt::Debug for TraceHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceHandle")
            .field("enabled", &self.enabled())
            .finish()
    }
}

/// Builds a shared sink plus a handle over it: the handle goes into the
/// run, the `Rc` stays with the caller for post-run inspection.
///
/// ```
/// use iqpaths_trace::{shared, InMemorySink, TraceEvent};
/// let (sink, handle) = shared(InMemorySink::unbounded());
/// handle.emit(TraceEvent::QueueDrop { at_ns: 1, stream: 0 });
/// assert_eq!(sink.borrow().len(), 1);
/// ```
pub fn shared<S: TraceSink + 'static>(sink: S) -> (Rc<RefCell<S>>, TraceHandle) {
    let rc = Rc::new(RefCell::new(sink));
    (rc.clone(), TraceHandle::from_shared(rc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::QueueDrop {
            at_ns: t,
            stream: 0,
        }
    }

    #[test]
    fn null_handle_is_disabled_and_silent() {
        let h = TraceHandle::null();
        assert!(!h.enabled());
        h.emit(ev(1)); // must not panic
        h.flush();
        assert!(!TraceHandle::default().enabled());
    }

    #[test]
    fn in_memory_ring_keeps_newest() {
        let mut s = InMemorySink::with_capacity(3);
        for t in 0..5 {
            s.emit(&ev(t));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.total(), 5);
        assert_eq!(s.overwritten(), 2);
        let ts: Vec<u64> = s.events().iter().map(TraceEvent::at_ns).collect();
        assert_eq!(ts, vec![2, 3, 4]);
    }

    #[test]
    fn in_memory_below_capacity_keeps_order() {
        let mut s = InMemorySink::with_capacity(10);
        assert!(s.is_empty());
        for t in 0..4 {
            s.emit(&ev(t));
        }
        let ts: Vec<u64> = s.events().iter().map(TraceEvent::at_ns).collect();
        assert_eq!(ts, vec![0, 1, 2, 3]);
        assert_eq!(s.overwritten(), 0);
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let mut s = JsonlSink::new(Vec::new());
        s.emit(&ev(7));
        s.emit(&TraceEvent::WindowStart {
            at_ns: 9,
            window_ns: 10,
            remapped: false,
        });
        assert_eq!(s.lines(), 2);
        let out = String::from_utf8(s.into_inner()).unwrap();
        assert_eq!(out.lines().count(), 2);
        assert!(out.starts_with(r#"{"ev":"qdrop","t":7,"stream":0}"#));
    }

    #[test]
    fn jsonl_decisions_only_filters_data_plane() {
        let mut s = JsonlSink::decisions_only(Vec::new());
        s.emit(&TraceEvent::Deliver {
            at_ns: 0,
            path: 0,
            stream: 0,
            seq: 0,
            missed_deadline: false,
        });
        s.emit(&ev(1)); // QueueDrop is decision-level
        assert_eq!(s.lines(), 1);
    }

    #[test]
    fn shared_handle_feeds_the_callers_sink() {
        let (sink, h) = shared(InMemorySink::unbounded());
        let h2 = h.clone();
        assert!(h.enabled());
        h.emit(ev(1));
        h2.emit(ev(2));
        assert_eq!(sink.borrow().len(), 2);
    }
}
