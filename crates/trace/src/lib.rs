//! # iqpaths-trace — scheduling-decision trace bus and runtime metrics
//!
//! The paper's claims (Lemma 1/2 guarantees, Table 1 precedence,
//! blocked-path backoff) are properties of *sequences of scheduling
//! decisions*, not of end-of-run aggregates. This crate event-sources
//! the monitor→map→schedule→deliver pipeline so that both production
//! observability and trace-driven test oracles consume the same stream:
//!
//! * [`event::TraceEvent`] — the event taxonomy: probe samples, CDF
//!   snapshots, mapping decisions and upcalls, virtual-deadline
//!   dispatch decisions, packet enqueue/dispatch/deliver/drop, and path
//!   block/backoff steps. Every variant is `Copy` (no heap allocation
//!   on the hot path).
//! * [`sink::TraceSink`] — where events go: [`sink::NullSink`] (the
//!   default; emission is a single predictable branch),
//!   [`sink::InMemorySink`] (bounded ring buffer), and
//!   [`sink::JsonlSink`] (stable, compact JSON-lines writer used by the
//!   golden-trace regression suite).
//! * [`sink::TraceHandle`] — the cheap, cloneable handle components
//!   hold. A null handle stores no sink at all, so `emit` on the
//!   untraced path compiles to an `Option` discriminant test.
//! * [`metrics::Metrics`] — always-on per-stream/per-path counters and
//!   log-bucket latency histograms, exported on `RunReport`.
//!
//! The crate is dependency-free and emulator-agnostic: producers are
//! `core::scheduler` (PGOS), `core::mapping`, `overlay::probe`, and
//! `middleware::runtime`; consumers are `testkit::invariants` and the
//! golden-trace suite.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod metrics;
pub mod sink;

pub use event::{DispatchClass, TraceEvent};
pub use metrics::{LatencyHistogram, Metrics, PathCounters, StreamCounters};
pub use sink::{shared, InMemorySink, JsonlSink, NullSink, TraceHandle, TraceSink};
