//! The trace-event taxonomy of the monitor→map→schedule→deliver
//! pipeline.
//!
//! Events are small `Copy` records — stream/path indices and
//! nanosecond timestamps, never names or owned strings — so emitting
//! one allocates nothing. Names are resolved offline by joining against
//! the run's stream table.

use std::fmt::Write as _;

/// Which Table 1 precedence class a dispatched packet was served under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchClass {
    /// Rule 1 — the packet was scheduled on the serving path's own
    /// scheduling vector (`VP`/`VS`).
    Scheduled,
    /// Rule 2 — budget stolen from another path whose owning stream is
    /// behind its paced schedule.
    OtherPath,
    /// Rule 3 — a packet not scheduled anywhere this window
    /// (guaranteed-stream overflow or best-effort traffic).
    Unscheduled,
}

impl DispatchClass {
    /// Table 1 rank (smaller serves first).
    pub fn rank(self) -> u8 {
        match self {
            DispatchClass::Scheduled => 1,
            DispatchClass::OtherPath => 2,
            DispatchClass::Unscheduled => 3,
        }
    }

    /// Stable short name used in serialized traces.
    pub fn name(self) -> &'static str {
        match self {
            DispatchClass::Scheduled => "sched",
            DispatchClass::OtherPath => "other",
            DispatchClass::Unscheduled => "unsched",
        }
    }
}

/// One event of the scheduling pipeline. All times are nanoseconds of
/// virtual (emulation) time; bandwidths are bits/s.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// An available-bandwidth probe report reached the monitoring
    /// module. `taken_at_ns < ready_at_ns` only under injected
    /// probe-reporting delay.
    ProbeSample {
        /// Path index.
        path: u32,
        /// Measurement timestamp.
        taken_at_ns: u64,
        /// When the monitoring module received the report.
        ready_at_ns: u64,
        /// Measured available bandwidth, bits/s.
        bw_bps: f64,
    },
    /// An injected fault dropped a probe report; the path's telemetry
    /// goes stale.
    ProbeLost {
        /// Path index.
        path: u32,
        /// When the lost probe would have fired.
        at_ns: u64,
    },
    /// A scheduling-window boundary.
    WindowStart {
        /// Window start time.
        at_ns: u64,
        /// Window length.
        window_ns: u64,
        /// Whether this boundary re-ran resource mapping.
        remapped: bool,
    },
    /// Digest of one path's monitoring CDF as handed to the scheduler
    /// at a window boundary (quantiles in bits/s; NaN when empty).
    CdfSnapshot {
        /// Path index.
        path: u32,
        /// Window start time this snapshot fed.
        at_ns: u64,
        /// Samples (or markers) backing the summary.
        samples: u32,
        /// Distribution mean.
        mean_bps: f64,
        /// 10th-percentile bandwidth (the guarantee floor at p = 0.9).
        q10_bps: f64,
        /// 90th-percentile bandwidth.
        q90_bps: f64,
    },
    /// Resource mapping placed `packets` packets/window of `stream`
    /// onto `path`. One event per non-zero assignment cell, emitted
    /// only when mapping re-runs.
    MappingDecision {
        /// Window start time of the remap.
        at_ns: u64,
        /// Stream index.
        stream: u32,
        /// Path index.
        path: u32,
        /// Packets per window assigned.
        packets: u32,
        /// The same assignment as a rate, bits/s.
        rate_bps: f64,
    },
    /// Admission control rejected a stream (§5.2.2 upcall).
    UpcallRaised {
        /// Window start time of the rejecting remap.
        at_ns: u64,
        /// Stream index.
        stream: u32,
        /// Requested rate, bits/s.
        requested_bps: f64,
        /// Total admissible rate at the requested guarantee, bits/s.
        admissible_bps: f64,
    },
    /// A packet entered its stream queue.
    Enqueue {
        /// Enqueue time.
        at_ns: u64,
        /// Stream index.
        stream: u32,
        /// Per-stream sequence number.
        seq: u64,
        /// Payload bytes.
        bytes: u32,
    },
    /// A full stream queue drop-tailed an arrival (no sequence number:
    /// the packet never existed).
    QueueDrop {
        /// Arrival time of the shed packet.
        at_ns: u64,
        /// Stream index.
        stream: u32,
    },
    /// The scheduler chose a packet for a free path — the VP/VS
    /// virtual-deadline assignment point. `candidate_deadline_ns` and
    /// `class_min_deadline_ns` expose the Table 1 comparison the
    /// precedence invariant checks; for `Scheduled` dispatches both
    /// equal the stamped deadline.
    DispatchDecision {
        /// Decision time.
        at_ns: u64,
        /// Serving path.
        path: u32,
        /// Chosen stream.
        stream: u32,
        /// Sequence number of the popped packet.
        seq: u64,
        /// Precedence class the packet was served under.
        class: DispatchClass,
        /// The winning candidate's virtual deadline at comparison time.
        candidate_deadline_ns: u64,
        /// Minimum deadline among same-class candidates (EDF witness).
        class_min_deadline_ns: u64,
        /// Whether any rule 2 (other-path) candidate was considered.
        other_scheduled_present: bool,
    },
    /// A packet began transmission on a path.
    Dispatch {
        /// Transmission start time.
        at_ns: u64,
        /// Serving path.
        path: u32,
        /// Stream index.
        stream: u32,
        /// Sequence number.
        seq: u64,
        /// Payload bytes.
        bytes: u32,
        /// Virtual deadline carried by the packet (`u64::MAX` =
        /// best-effort).
        deadline_ns: u64,
    },
    /// A packet finished transmission and reached the client.
    Deliver {
        /// Transmission completion time.
        at_ns: u64,
        /// Path traveled.
        path: u32,
        /// Stream index.
        stream: u32,
        /// Sequence number.
        seq: u64,
        /// Whether a deadline-bearing packet was served past its
        /// deadline.
        missed_deadline: bool,
    },
    /// A packet was lost in transit (link loss after dispatch).
    TransitDrop {
        /// Loss detection time.
        at_ns: u64,
        /// Path traveled.
        path: u32,
        /// Stream index.
        stream: u32,
        /// Sequence number.
        seq: u64,
    },
    /// Blocked-path detection fired: the path's residual fell below the
    /// blocked threshold while it was due to transmit.
    PathBlocked {
        /// Detection time.
        at_ns: u64,
        /// Path index.
        path: u32,
        /// Residual bandwidth observed, bits/s.
        residual_bps: f64,
    },
    /// The scheduler advanced a blocked path's exponential backoff.
    BackoffStep {
        /// When the block was reported.
        at_ns: u64,
        /// Path index.
        path: u32,
        /// New backoff step (5 ms doubling to the 1 s cap).
        step_ns: u64,
        /// Absolute time until which the path is skipped.
        until_ns: u64,
    },
    /// A window boundary found a path's backoff expired and reset it to
    /// the initial step.
    BackoffReset {
        /// Window start time.
        at_ns: u64,
        /// Path index.
        path: u32,
    },
    /// A budgeted probe planner planned one probe slot: `selected` of
    /// `allowance` permitted probes were issued across the path set.
    /// Emitted only when a non-default planner/budget is active, so the
    /// legacy probe-everything configuration traces byte-identically.
    ProbePlan {
        /// Slot planning time.
        at_ns: u64,
        /// Probe-slot counter (0-based, main loop only).
        slot: u64,
        /// Probes the budget permitted this slot.
        allowance: u32,
        /// Probes actually planned.
        selected: u32,
    },
    /// One planned probe: the planner chose `path` at `slot` with
    /// information score `score` (0 for schedule-driven planners).
    ProbeSelect {
        /// Slot planning time.
        at_ns: u64,
        /// Probe-slot counter.
        slot: u64,
        /// Selected path.
        path: u32,
        /// Post-discount information score at selection time.
        score: f64,
    },
    /// The Diversity mapper planned an (n, k) erasure-coding stripe for
    /// a stream (one event per coded stream, emitted once at planning
    /// time). Absent under the default PGOS mapping, so classic traces
    /// stay byte-identical.
    CodingPlan {
        /// Planning time (admission pre-warm).
        at_ns: u64,
        /// Stream index.
        stream: u32,
        /// Blocks per group (data + parity).
        n: u32,
        /// Data blocks per group.
        k: u32,
        /// Planner's correlation-discounted P(group decodes on time).
        decode_p: f64,
    },
    /// A parity block was synthesized and enqueued behind the group's
    /// `k`-th data block.
    CodingParity {
        /// Synthesis time.
        at_ns: u64,
        /// Stream index.
        stream: u32,
        /// Sequence number of the parity block.
        seq: u64,
        /// Group index (`seq / n`).
        group: u64,
    },
    /// A coded group reached `k` on-time blocks: every data packet of
    /// the group counts as delivered before its deadline, including
    /// `recovered` blocks that were lost or late themselves.
    CodingDecode {
        /// Decode-complete time (arrival of the `k`-th on-time block).
        at_ns: u64,
        /// Stream index.
        stream: u32,
        /// Group index.
        group: u64,
        /// Data blocks credited by reconstruction rather than direct
        /// on-time delivery.
        recovered: u32,
    },
}

impl TraceEvent {
    /// Stable event-type tag used in serialized traces.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ProbeSample { .. } => "probe",
            TraceEvent::ProbeLost { .. } => "probe_lost",
            TraceEvent::WindowStart { .. } => "window",
            TraceEvent::CdfSnapshot { .. } => "cdf",
            TraceEvent::MappingDecision { .. } => "map",
            TraceEvent::UpcallRaised { .. } => "upcall",
            TraceEvent::Enqueue { .. } => "enq",
            TraceEvent::QueueDrop { .. } => "qdrop",
            TraceEvent::DispatchDecision { .. } => "decide",
            TraceEvent::Dispatch { .. } => "tx",
            TraceEvent::Deliver { .. } => "rx",
            TraceEvent::TransitDrop { .. } => "loss",
            TraceEvent::PathBlocked { .. } => "blocked",
            TraceEvent::BackoffStep { .. } => "backoff",
            TraceEvent::BackoffReset { .. } => "backoff_reset",
            TraceEvent::ProbePlan { .. } => "probe_plan",
            TraceEvent::ProbeSelect { .. } => "probe_select",
            TraceEvent::CodingPlan { .. } => "coding_plan",
            TraceEvent::CodingParity { .. } => "coding_parity",
            TraceEvent::CodingDecode { .. } => "coding_decode",
        }
    }

    /// Timestamp of the event in nanoseconds of virtual time (the
    /// measurement timestamp for probe samples).
    pub fn at_ns(&self) -> u64 {
        match *self {
            TraceEvent::ProbeSample { taken_at_ns, .. } => taken_at_ns,
            TraceEvent::ProbeLost { at_ns, .. }
            | TraceEvent::WindowStart { at_ns, .. }
            | TraceEvent::CdfSnapshot { at_ns, .. }
            | TraceEvent::MappingDecision { at_ns, .. }
            | TraceEvent::UpcallRaised { at_ns, .. }
            | TraceEvent::Enqueue { at_ns, .. }
            | TraceEvent::QueueDrop { at_ns, .. }
            | TraceEvent::DispatchDecision { at_ns, .. }
            | TraceEvent::Dispatch { at_ns, .. }
            | TraceEvent::Deliver { at_ns, .. }
            | TraceEvent::TransitDrop { at_ns, .. }
            | TraceEvent::PathBlocked { at_ns, .. }
            | TraceEvent::BackoffStep { at_ns, .. }
            | TraceEvent::BackoffReset { at_ns, .. }
            | TraceEvent::ProbePlan { at_ns, .. }
            | TraceEvent::ProbeSelect { at_ns, .. }
            | TraceEvent::CodingPlan { at_ns, .. }
            | TraceEvent::CodingParity { at_ns, .. }
            | TraceEvent::CodingDecode { at_ns, .. } => at_ns,
        }
    }

    /// Whether this is a *decision-level* event — the compact subset
    /// the golden-trace regression suite pins (window boundaries, CDF
    /// digests, mapping, upcalls, blocking/backoff, shed arrivals), as
    /// opposed to the per-packet and per-probe data plane.
    pub fn is_decision(&self) -> bool {
        matches!(
            self,
            TraceEvent::WindowStart { .. }
                | TraceEvent::CdfSnapshot { .. }
                | TraceEvent::MappingDecision { .. }
                | TraceEvent::UpcallRaised { .. }
                | TraceEvent::QueueDrop { .. }
                | TraceEvent::PathBlocked { .. }
                | TraceEvent::BackoffStep { .. }
                | TraceEvent::BackoffReset { .. }
                | TraceEvent::ProbeLost { .. }
                | TraceEvent::ProbePlan { .. }
                | TraceEvent::ProbeSelect { .. }
                | TraceEvent::CodingPlan { .. }
        )
    }

    /// Appends the event as one compact, stable JSON line (no trailing
    /// newline). Field order is fixed; floats use Rust's shortest
    /// round-trip formatting, so identical runs serialize bit-identically.
    pub fn write_jsonl(&self, out: &mut String) {
        let _ = match *self {
            TraceEvent::ProbeSample {
                path,
                taken_at_ns,
                ready_at_ns,
                bw_bps,
            } => write!(
                out,
                r#"{{"ev":"probe","path":{path},"taken_ns":{taken_at_ns},"ready_ns":{ready_at_ns},"bw":{bw_bps:?}}}"#
            ),
            TraceEvent::ProbeLost { path, at_ns } => {
                write!(out, r#"{{"ev":"probe_lost","t":{at_ns},"path":{path}}}"#)
            }
            TraceEvent::WindowStart {
                at_ns,
                window_ns,
                remapped,
            } => write!(
                out,
                r#"{{"ev":"window","t":{at_ns},"len_ns":{window_ns},"remapped":{remapped}}}"#
            ),
            TraceEvent::CdfSnapshot {
                path,
                at_ns,
                samples,
                mean_bps,
                q10_bps,
                q90_bps,
            } => write!(
                out,
                r#"{{"ev":"cdf","t":{at_ns},"path":{path},"n":{samples},"mean":{mean_bps:?},"q10":{q10_bps:?},"q90":{q90_bps:?}}}"#
            ),
            TraceEvent::MappingDecision {
                at_ns,
                stream,
                path,
                packets,
                rate_bps,
            } => write!(
                out,
                r#"{{"ev":"map","t":{at_ns},"stream":{stream},"path":{path},"pkts":{packets},"rate":{rate_bps:?}}}"#
            ),
            TraceEvent::UpcallRaised {
                at_ns,
                stream,
                requested_bps,
                admissible_bps,
            } => write!(
                out,
                r#"{{"ev":"upcall","t":{at_ns},"stream":{stream},"req":{requested_bps:?},"adm":{admissible_bps:?}}}"#
            ),
            TraceEvent::Enqueue {
                at_ns,
                stream,
                seq,
                bytes,
            } => write!(
                out,
                r#"{{"ev":"enq","t":{at_ns},"stream":{stream},"seq":{seq},"bytes":{bytes}}}"#
            ),
            TraceEvent::QueueDrop { at_ns, stream } => {
                write!(out, r#"{{"ev":"qdrop","t":{at_ns},"stream":{stream}}}"#)
            }
            TraceEvent::DispatchDecision {
                at_ns,
                path,
                stream,
                seq,
                class,
                candidate_deadline_ns,
                class_min_deadline_ns,
                other_scheduled_present,
            } => write!(
                out,
                r#"{{"ev":"decide","t":{at_ns},"path":{path},"stream":{stream},"seq":{seq},"class":"{}","dl":{candidate_deadline_ns},"dl_min":{class_min_deadline_ns},"other":{other_scheduled_present}}}"#,
                class.name()
            ),
            TraceEvent::Dispatch {
                at_ns,
                path,
                stream,
                seq,
                bytes,
                deadline_ns,
            } => write!(
                out,
                r#"{{"ev":"tx","t":{at_ns},"path":{path},"stream":{stream},"seq":{seq},"bytes":{bytes},"dl":{deadline_ns}}}"#
            ),
            TraceEvent::Deliver {
                at_ns,
                path,
                stream,
                seq,
                missed_deadline,
            } => write!(
                out,
                r#"{{"ev":"rx","t":{at_ns},"path":{path},"stream":{stream},"seq":{seq},"missed":{missed_deadline}}}"#
            ),
            TraceEvent::TransitDrop {
                at_ns,
                path,
                stream,
                seq,
            } => write!(
                out,
                r#"{{"ev":"loss","t":{at_ns},"path":{path},"stream":{stream},"seq":{seq}}}"#
            ),
            TraceEvent::PathBlocked {
                at_ns,
                path,
                residual_bps,
            } => write!(
                out,
                r#"{{"ev":"blocked","t":{at_ns},"path":{path},"residual":{residual_bps:?}}}"#
            ),
            TraceEvent::BackoffStep {
                at_ns,
                path,
                step_ns,
                until_ns,
            } => write!(
                out,
                r#"{{"ev":"backoff","t":{at_ns},"path":{path},"step_ns":{step_ns},"until_ns":{until_ns}}}"#
            ),
            TraceEvent::BackoffReset { at_ns, path } => {
                write!(out, r#"{{"ev":"backoff_reset","t":{at_ns},"path":{path}}}"#)
            }
            TraceEvent::ProbePlan {
                at_ns,
                slot,
                allowance,
                selected,
            } => write!(
                out,
                r#"{{"ev":"probe_plan","t":{at_ns},"slot":{slot},"allow":{allowance},"sel":{selected}}}"#
            ),
            TraceEvent::ProbeSelect {
                at_ns,
                slot,
                path,
                score,
            } => write!(
                out,
                r#"{{"ev":"probe_select","t":{at_ns},"slot":{slot},"path":{path},"score":{score:?}}}"#
            ),
            TraceEvent::CodingPlan {
                at_ns,
                stream,
                n,
                k,
                decode_p,
            } => write!(
                out,
                r#"{{"ev":"coding_plan","t":{at_ns},"stream":{stream},"n":{n},"k":{k},"decode_p":{decode_p:?}}}"#
            ),
            TraceEvent::CodingParity {
                at_ns,
                stream,
                seq,
                group,
            } => write!(
                out,
                r#"{{"ev":"coding_parity","t":{at_ns},"stream":{stream},"seq":{seq},"group":{group}}}"#
            ),
            TraceEvent::CodingDecode {
                at_ns,
                stream,
                group,
                recovered,
            } => write!(
                out,
                r#"{{"ev":"coding_decode","t":{at_ns},"stream":{stream},"group":{group},"recovered":{recovered}}}"#
            ),
        };
    }

    /// The event as one owned JSON line (convenience over
    /// [`TraceEvent::write_jsonl`]).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::with_capacity(96);
        self.write_jsonl(&mut s);
        s
    }

    /// The stream index the event is about, when it carries one —
    /// exactly the events [`TraceEvent::map_stream`] rewrites.
    pub fn stream(&self) -> Option<u32> {
        match self {
            TraceEvent::MappingDecision { stream, .. }
            | TraceEvent::UpcallRaised { stream, .. }
            | TraceEvent::Enqueue { stream, .. }
            | TraceEvent::QueueDrop { stream, .. }
            | TraceEvent::DispatchDecision { stream, .. }
            | TraceEvent::Dispatch { stream, .. }
            | TraceEvent::Deliver { stream, .. }
            | TraceEvent::TransitDrop { stream, .. }
            | TraceEvent::CodingPlan { stream, .. }
            | TraceEvent::CodingParity { stream, .. }
            | TraceEvent::CodingDecode { stream, .. } => Some(*stream),
            _ => None,
        }
    }

    /// Returns the event with its stream index rewritten through `f`
    /// (identity on events that carry no stream). Sharded runtimes
    /// trace against shard-local stream indices and remap to global
    /// indices at merge time.
    #[must_use]
    pub fn map_stream(self, f: impl Fn(u32) -> u32) -> Self {
        let mut ev = self;
        match &mut ev {
            TraceEvent::MappingDecision { stream, .. }
            | TraceEvent::UpcallRaised { stream, .. }
            | TraceEvent::Enqueue { stream, .. }
            | TraceEvent::QueueDrop { stream, .. }
            | TraceEvent::DispatchDecision { stream, .. }
            | TraceEvent::Dispatch { stream, .. }
            | TraceEvent::Deliver { stream, .. }
            | TraceEvent::TransitDrop { stream, .. }
            | TraceEvent::CodingPlan { stream, .. }
            | TraceEvent::CodingParity { stream, .. }
            | TraceEvent::CodingDecode { stream, .. } => *stream = f(*stream),
            TraceEvent::ProbeSample { .. }
            | TraceEvent::ProbeLost { .. }
            | TraceEvent::WindowStart { .. }
            | TraceEvent::CdfSnapshot { .. }
            | TraceEvent::PathBlocked { .. }
            | TraceEvent::BackoffStep { .. }
            | TraceEvent::BackoffReset { .. }
            | TraceEvent::ProbePlan { .. }
            | TraceEvent::ProbeSelect { .. } => {}
        }
        ev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_timestamps_are_consistent() {
        let evs = [
            TraceEvent::ProbeSample {
                path: 1,
                taken_at_ns: 5,
                ready_at_ns: 9,
                bw_bps: 1.5e6,
            },
            TraceEvent::WindowStart {
                at_ns: 7,
                window_ns: 10,
                remapped: true,
            },
            TraceEvent::Deliver {
                at_ns: 11,
                path: 0,
                stream: 2,
                seq: 3,
                missed_deadline: false,
            },
        ];
        assert_eq!(evs[0].kind(), "probe");
        assert_eq!(evs[0].at_ns(), 5);
        assert_eq!(evs[1].at_ns(), 7);
        assert_eq!(evs[2].at_ns(), 11);
    }

    #[test]
    fn decision_filter_keeps_control_plane_only() {
        let win = TraceEvent::WindowStart {
            at_ns: 0,
            window_ns: 1,
            remapped: false,
        };
        let rx = TraceEvent::Deliver {
            at_ns: 0,
            path: 0,
            stream: 0,
            seq: 0,
            missed_deadline: false,
        };
        let probe = TraceEvent::ProbeSample {
            path: 0,
            taken_at_ns: 0,
            ready_at_ns: 0,
            bw_bps: 0.0,
        };
        assert!(win.is_decision());
        assert!(!rx.is_decision());
        assert!(!probe.is_decision());
    }

    #[test]
    fn jsonl_is_stable_and_compact() {
        let ev = TraceEvent::MappingDecision {
            at_ns: 1_000_000_000,
            stream: 0,
            path: 1,
            packets: 800,
            rate_bps: 8.0e6,
        };
        assert_eq!(
            ev.to_jsonl(),
            r#"{"ev":"map","t":1000000000,"stream":0,"path":1,"pkts":800,"rate":8000000.0}"#
        );
        // Serialization is a pure function of the value.
        assert_eq!(ev.to_jsonl(), ev.to_jsonl());
    }

    #[test]
    fn map_stream_rewrites_stream_bearing_events_only() {
        let rx = TraceEvent::Deliver {
            at_ns: 9,
            path: 1,
            stream: 2,
            seq: 5,
            missed_deadline: false,
        };
        match rx.map_stream(|s| s + 10) {
            TraceEvent::Deliver { stream, seq, .. } => {
                assert_eq!(stream, 12);
                assert_eq!(seq, 5);
            }
            other => panic!("variant changed: {other:?}"),
        }
        let win = TraceEvent::WindowStart {
            at_ns: 3,
            window_ns: 4,
            remapped: false,
        };
        assert_eq!(win.map_stream(|_| 99), win);
    }

    #[test]
    fn planner_events_are_decisions_with_stable_jsonl() {
        let plan = TraceEvent::ProbePlan {
            at_ns: 2_000_000_000,
            slot: 17,
            allowance: 2,
            selected: 2,
        };
        let sel = TraceEvent::ProbeSelect {
            at_ns: 2_000_000_000,
            slot: 17,
            path: 3,
            score: 0.03125,
        };
        assert!(plan.is_decision());
        assert!(sel.is_decision());
        assert_eq!(plan.at_ns(), 2_000_000_000);
        assert_eq!(
            plan.to_jsonl(),
            r#"{"ev":"probe_plan","t":2000000000,"slot":17,"allow":2,"sel":2}"#
        );
        assert_eq!(
            sel.to_jsonl(),
            r#"{"ev":"probe_select","t":2000000000,"slot":17,"path":3,"score":0.03125}"#
        );
        // Planner events carry no stream and are merge-stable.
        assert_eq!(sel.stream(), None);
        assert_eq!(sel.map_stream(|_| 99), sel);
    }

    #[test]
    fn class_ranks_follow_table1() {
        assert!(DispatchClass::Scheduled.rank() < DispatchClass::OtherPath.rank());
        assert!(DispatchClass::OtherPath.rank() < DispatchClass::Unscheduled.rank());
        assert_eq!(DispatchClass::OtherPath.name(), "other");
    }
}
