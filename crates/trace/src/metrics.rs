//! Always-on runtime counters and latency histograms.
//!
//! Unlike the event bus (opt-in, arbitrarily detailed), metrics are
//! plain `u64` bumps plus one logarithmic histogram bucket per
//! delivery — cheap enough to keep enabled on every run and exported
//! on `RunReport` as the production-observability surface.

/// A base-2 logarithmic latency histogram over nanoseconds.
///
/// Bucket `k` holds samples with `floor(log2(ns)) == k` (bucket 0 also
/// takes 0 ns). 64 buckets cover the full `u64` range; quantile
/// queries return the upper bound of the containing bucket, i.e. they
/// are exact to within a factor of 2 — the right fidelity for
/// "p99 latency regressed 10×" regression gates at zero allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_ns: u128,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    fn bucket(ns: u64) -> usize {
        63 - ns.max(1).leading_zeros() as usize
    }

    /// Records one latency sample.
    pub fn record(&mut self, ns: u64) {
        self.buckets[Self::bucket(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean latency in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Exact maximum sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`None` when empty). Exact to within a factor of 2.
    ///
    /// # Panics
    /// Panics unless `0.0 <= q <= 1.0`.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile in [0, 1]");
        if self.count == 0 {
            return None;
        }
        // Rank of the q-quantile sample, 1-based, clamped into range.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(if k >= 63 { u64::MAX } else { (2u64 << k) - 1 });
            }
        }
        unreachable!("count covers all buckets");
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// Per-stream packet accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCounters {
    /// Packets admitted to the stream queue.
    pub enqueued: u64,
    /// Arrivals shed by the full queue.
    pub queue_dropped: u64,
    /// Packets handed to a path service.
    pub dispatched: u64,
    /// Packets delivered to the client.
    pub delivered: u64,
    /// Packets lost in transit after dispatch.
    pub transit_lost: u64,
    /// Delivered packets that carried a scheduling-window deadline.
    pub deadline_packets: u64,
    /// Deadline-bearing packets served past their deadline.
    pub deadline_misses: u64,
}

impl StreamCounters {
    /// Packets enqueued but neither delivered nor lost — still queued
    /// or in flight when the run ended.
    pub fn outstanding(&self) -> u64 {
        self.enqueued - self.delivered - self.transit_lost
    }

    /// Flow conservation: every enqueued packet is delivered, lost, or
    /// still outstanding, and nothing is delivered twice.
    pub fn conserved(&self) -> bool {
        self.delivered + self.transit_lost <= self.enqueued
            && self.dispatched >= self.delivered + self.transit_lost
            && self.dispatched <= self.enqueued
    }

    /// Adds another stream's counters into this one, fieldwise.
    /// Addition is commutative and associative, so cross-shard merges
    /// are independent of merge order.
    pub fn add(&mut self, other: &StreamCounters) {
        self.enqueued += other.enqueued;
        self.queue_dropped += other.queue_dropped;
        self.dispatched += other.dispatched;
        self.delivered += other.delivered;
        self.transit_lost += other.transit_lost;
        self.deadline_packets += other.deadline_packets;
        self.deadline_misses += other.deadline_misses;
    }
}

/// Per-path service accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathCounters {
    /// Packets handed to this path's service.
    pub dispatched: u64,
    /// Packets this path delivered.
    pub delivered: u64,
    /// Packets this path lost in transit.
    pub transit_lost: u64,
    /// Payload bytes dispatched.
    pub bytes: u64,
    /// Blocked-path detections.
    pub blocked_events: u64,
}

impl PathCounters {
    /// Adds another path's counters into this one, fieldwise
    /// (commutative — see [`StreamCounters::add`]).
    pub fn add(&mut self, other: &PathCounters) {
        self.dispatched += other.dispatched;
        self.delivered += other.delivered;
        self.transit_lost += other.transit_lost;
        self.bytes += other.bytes;
        self.blocked_events += other.blocked_events;
    }
}

/// The run's metrics snapshot: per-stream and per-path counters plus a
/// per-stream end-to-end latency histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// One row per stream, in stream order.
    pub streams: Vec<StreamCounters>,
    /// One row per path, in path order.
    pub paths: Vec<PathCounters>,
    /// Per-stream end-to-end latency (enqueue → client arrival).
    pub latency: Vec<LatencyHistogram>,
}

impl Metrics {
    /// Zeroed metrics for `streams` × `paths`.
    pub fn new(streams: usize, paths: usize) -> Self {
        Self {
            streams: vec![StreamCounters::default(); streams],
            paths: vec![PathCounters::default(); paths],
            latency: vec![LatencyHistogram::new(); streams],
        }
    }

    /// Records a successful enqueue.
    #[inline]
    pub fn on_enqueue(&mut self, stream: usize) {
        self.streams[stream].enqueued += 1;
    }

    /// Records a queue-full drop.
    #[inline]
    pub fn on_queue_drop(&mut self, stream: usize) {
        self.streams[stream].queue_dropped += 1;
    }

    /// Records a packet handed to a path service.
    #[inline]
    pub fn on_dispatch(&mut self, stream: usize, path: usize, bytes: u32) {
        self.streams[stream].dispatched += 1;
        self.paths[path].dispatched += 1;
        self.paths[path].bytes += u64::from(bytes);
    }

    /// Records a delivery with its end-to-end latency.
    #[inline]
    pub fn on_deliver(
        &mut self,
        stream: usize,
        path: usize,
        latency_ns: u64,
        has_deadline: bool,
        missed_deadline: bool,
    ) {
        self.streams[stream].delivered += 1;
        self.paths[path].delivered += 1;
        if has_deadline {
            self.streams[stream].deadline_packets += 1;
            if missed_deadline {
                self.streams[stream].deadline_misses += 1;
            }
        }
        self.latency[stream].record(latency_ns);
    }

    /// Records a transit loss.
    #[inline]
    pub fn on_transit_loss(&mut self, stream: usize, path: usize) {
        self.streams[stream].transit_lost += 1;
        self.paths[path].transit_lost += 1;
    }

    /// Records a blocked-path detection.
    #[inline]
    pub fn on_path_blocked(&mut self, path: usize) {
        self.paths[path].blocked_events += 1;
    }

    /// Flow conservation across every stream.
    pub fn conserved(&self) -> bool {
        self.streams.iter().all(StreamCounters::conserved)
    }

    /// Folds a shard-local metrics snapshot into this global one.
    ///
    /// `stream_map[i]` gives the global stream index of the shard's
    /// local stream `i`; paths are global on every shard and merge
    /// elementwise. Every per-field operation is a commutative,
    /// associative sum (histograms merge bucketwise), so the result is
    /// independent of the order shards are absorbed in.
    ///
    /// # Panics
    /// Panics when `stream_map` disagrees with `other`'s stream count,
    /// maps outside this snapshot's streams, or path counts differ.
    pub fn absorb(&mut self, other: &Metrics, stream_map: &[usize]) {
        assert_eq!(
            stream_map.len(),
            other.streams.len(),
            "stream_map must cover the shard's streams"
        );
        assert_eq!(
            self.paths.len(),
            other.paths.len(),
            "shards must see the same global path set"
        );
        for (local, &global) in stream_map.iter().enumerate() {
            self.streams[global].add(&other.streams[local]);
            self.latency[global].merge(&other.latency[local]);
        }
        for (a, b) in self.paths.iter_mut().zip(&other.paths) {
            a.add(b);
        }
    }

    /// End-to-end latency quantile for one stream, in seconds (`None`
    /// when the stream delivered nothing).
    pub fn latency_quantile(&self, stream: usize, q: f64) -> Option<f64> {
        self.latency[stream]
            .quantile_ns(q)
            .map(|ns| ns as f64 / 1e9)
    }

    /// Flat `(name, value)` export of every counter and the headline
    /// latency quantiles — the machine-readable surface the experiment
    /// harness folds into each sweep cell's `CellResult`. Names are
    /// stable (`stream<i>.<counter>` / `path<j>.<counter>`) and emitted
    /// in a deterministic order, so serialized cells can be compared
    /// byte-for-byte across runs.
    pub fn kv_pairs(&self) -> Vec<(String, f64)> {
        let mut out = Vec::new();
        for (i, s) in self.streams.iter().enumerate() {
            out.push((format!("stream{i}.enqueued"), s.enqueued as f64));
            out.push((format!("stream{i}.queue_dropped"), s.queue_dropped as f64));
            out.push((format!("stream{i}.dispatched"), s.dispatched as f64));
            out.push((format!("stream{i}.delivered"), s.delivered as f64));
            out.push((format!("stream{i}.transit_lost"), s.transit_lost as f64));
            out.push((
                format!("stream{i}.deadline_misses"),
                s.deadline_misses as f64,
            ));
            out.push((
                format!("stream{i}.latency_p50_s"),
                self.latency_quantile(i, 0.5).unwrap_or(0.0),
            ));
            out.push((
                format!("stream{i}.latency_p99_s"),
                self.latency_quantile(i, 0.99).unwrap_or(0.0),
            ));
        }
        for (j, p) in self.paths.iter().enumerate() {
            out.push((format!("path{j}.delivered"), p.delivered as f64));
            out.push((format!("path{j}.bytes"), p.bytes as f64));
            out.push((format!("path{j}.blocked_events"), p.blocked_events as f64));
        }
        out
    }

    /// A human-readable per-stream metrics table.
    pub fn summary_table(&self) -> String {
        let mut out = format!(
            "{:<7} {:>10} {:>8} {:>10} {:>10} {:>7} {:>9} {:>11} {:>11}\n",
            "stream",
            "enqueued",
            "qdrop",
            "delivered",
            "lost",
            "missed",
            "p50(ms)",
            "p99(ms)",
            "max(ms)"
        );
        for (i, s) in self.streams.iter().enumerate() {
            let ms = |q| {
                self.latency_quantile(i, q)
                    .map_or_else(|| "-".to_string(), |v| format!("{:.3}", v * 1e3))
            };
            out.push_str(&format!(
                "{:<7} {:>10} {:>8} {:>10} {:>10} {:>7} {:>9} {:>11} {:>11.3}\n",
                i,
                s.enqueued,
                s.queue_dropped,
                s.delivered,
                s.transit_lost,
                s.deadline_misses,
                ms(0.5),
                ms(0.99),
                self.latency[i].max_ns() as f64 / 1e6,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile_ns(0.5), None);
        h.record(0);
        h.record(1);
        h.record(1000);
        h.record(1_000_000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max_ns(), 1_000_000);
        // 0 and 1 land in bucket 0 (upper bound 1).
        assert_eq!(h.quantile_ns(0.0), Some(1));
        assert_eq!(h.quantile_ns(0.5), Some(1));
        // 1000 is in bucket 9: upper bound 1023.
        assert_eq!(h.quantile_ns(0.75), Some(1023));
        // The top sample's bucket bound is within 2× of the sample.
        let p100 = h.quantile_ns(1.0).unwrap();
        assert!((1_000_000..2_000_000).contains(&p100));
        assert!((h.mean_ns() - 250_250.25).abs() < 1e-6);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(10);
        b.record(1 << 40);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_ns(), 1 << 40);
        assert_eq!(a.quantile_ns(1.0), Some((2u64 << 40) - 1));
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut m = Metrics::new(2, 2);
        m.on_enqueue(0);
        m.on_enqueue(0);
        m.on_queue_drop(1);
        m.on_dispatch(0, 1, 1250);
        m.on_deliver(0, 1, 2_000_000, true, false);
        assert!(m.conserved());
        assert_eq!(m.streams[0].enqueued, 2);
        assert_eq!(m.streams[0].outstanding(), 1);
        assert_eq!(m.streams[1].queue_dropped, 1);
        assert_eq!(m.paths[1].bytes, 1250);
        assert_eq!(m.streams[0].deadline_packets, 1);
        assert_eq!(m.streams[0].deadline_misses, 0);
        // 2 ms latency → p50 in the [2^20, 2^21) bucket ≈ 2.097 ms.
        let p50 = m.latency_quantile(0, 0.5).unwrap();
        assert!((2.0e-3..4.2e-3).contains(&p50), "p50={p50}");
        assert_eq!(m.latency_quantile(1, 0.5), None);
    }

    #[test]
    fn conservation_detects_overdelivery() {
        let mut m = Metrics::new(1, 1);
        m.on_enqueue(0);
        m.on_dispatch(0, 0, 100);
        m.on_deliver(0, 0, 10, false, false);
        assert!(m.conserved());
        // A second delivery of the same lone packet breaks the books.
        m.on_deliver(0, 0, 10, false, false);
        assert!(!m.conserved());
    }

    #[test]
    fn transit_loss_and_blocked_are_per_path() {
        let mut m = Metrics::new(1, 3);
        m.on_enqueue(0);
        m.on_dispatch(0, 2, 500);
        m.on_transit_loss(0, 2);
        m.on_path_blocked(2);
        assert!(m.conserved());
        assert_eq!(m.paths[2].transit_lost, 1);
        assert_eq!(m.paths[2].blocked_events, 1);
        assert_eq!(m.paths[0].blocked_events, 0);
    }

    #[test]
    fn absorb_is_commutative_and_remaps_streams() {
        let shard = |streams: &[usize]| {
            // Shard metrics are local-dense: stream k here maps to
            // streams[k] globally.
            let mut m = Metrics::new(streams.len(), 2);
            for (local, &global) in streams.iter().enumerate() {
                for _ in 0..=global {
                    m.on_enqueue(local);
                    m.on_dispatch(local, global % 2, 100);
                    m.on_deliver(local, global % 2, 1000 * (global as u64 + 1), false, false);
                }
            }
            m
        };
        let a = shard(&[0, 2]);
        let b = shard(&[1]);

        let mut ab = Metrics::new(3, 2);
        ab.absorb(&a, &[0, 2]);
        ab.absorb(&b, &[1]);
        let mut ba = Metrics::new(3, 2);
        ba.absorb(&b, &[1]);
        ba.absorb(&a, &[0, 2]);

        assert_eq!(ab, ba, "merge order must not matter");
        assert!(ab.conserved());
        assert_eq!(ab.streams[2].delivered, 3);
        assert_eq!(ab.streams[1].enqueued, 2);
        assert_eq!(ab.paths[0].delivered + ab.paths[1].delivered, 6);
        assert_eq!(ab.latency[2].count(), 3);
    }

    #[test]
    fn summary_table_has_one_row_per_stream() {
        let mut m = Metrics::new(2, 1);
        m.on_enqueue(0);
        m.on_dispatch(0, 0, 10);
        m.on_deliver(0, 0, 5_000_000, false, false);
        let t = m.summary_table();
        assert_eq!(t.lines().count(), 3);
        assert!(t.contains("p99"));
    }
}
