//! # iqpaths-apps — the paper's evaluation applications
//!
//! Three representative distributed applications drive the evaluation
//! (§6 and the referenced technical report):
//!
//! * [`smartpointer`] — the SmartPointer molecular-dynamics remote
//!   visualization system: streams *Atom* (3.249 Mbps @ 95%), *Bond1*
//!   (22.148 Mbps @ 95%) and best-effort *Bond2*, framed at 25 fps.
//! * [`gridftp`] — IQPG-GridFTP transferring climate-database records
//!   (DT1 numeric 172.8 KB, DT2 low-res 128 KB, DT3 high-res 384 KB) at
//!   a 25 records/s SLO for DT1/DT2.
//! * [`mpeg4`] — MPEG-4 fine-grained-scalable layered video: a base
//!   layer with a strong guarantee and FGS enhancement layers with
//!   progressively weaker utility.
//!
//! All applications emit time-ordered packet [`workload::Arrival`]s via
//! the [`workload::Workload`] trait; the middleware feeds them into the
//! stream queues and drives whichever scheduler is under test.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gridftp;
pub mod mpeg4;
pub mod smartpointer;
pub mod workload;

pub use workload::{Arrival, FrameTracker, Workload};
