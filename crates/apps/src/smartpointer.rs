//! The SmartPointer distributed-collaboration workload (§6.1).
//!
//! "Consider the SmartPointer server issuing three streams (Atom, Bond1,
//! and Bond2) to remote clients. Streams Atom and Bond1 are data about
//! all atoms and those bonds that are in the observer's immediate
//! graphical view volume, whereas stream Bond2 contains the bonds
//! outside the observer's current view. Therefore, Streams Atom and
//! Bond1 are important and must be delivered in real-time (25 frame/sec)
//! … The input (utility requirements) to PGOS are 3.249 Mbps with 95%
//! predictive guarantee for stream Atom and 22.148 Mbps with 95%
//! predictive guarantee for stream Bond1."

use crate::workload::{FrameTracker, FramedSource, Workload};
use iqpaths_core::stream::StreamSpec;

/// Stream indices of the SmartPointer workload.
pub const ATOM: usize = 0;
/// Critical in-view bond stream.
pub const BOND1: usize = 1;
/// Out-of-view bond stream (best effort).
pub const BOND2: usize = 2;

/// Frame rate required for effective collaboration.
pub const FPS: f64 = 25.0;
/// Atom stream requirement (bits/s).
pub const ATOM_BW: f64 = 3.249e6;
/// Bond1 stream requirement (bits/s).
pub const BOND1_BW: f64 = 22.148e6;
/// Guarantee level for both critical streams.
pub const GUARANTEE_P: f64 = 0.95;

/// Configuration of the SmartPointer workload.
#[derive(Debug, Clone, Copy)]
pub struct SmartPointerConfig {
    /// Offered rate of the best-effort Bond2 stream (bits/s). The paper
    /// lets it soak up all leftover path bandwidth; 70 Mbps pushes the
    /// total offered load to the edge of the two paths' combined
    /// available bandwidth, as in the evaluation.
    pub bond2_bw: f64,
    /// Packet size in bytes for all three streams.
    pub packet_bytes: u32,
    /// Workload duration in seconds.
    pub duration: f64,
}

impl Default for SmartPointerConfig {
    fn default() -> Self {
        Self {
            bond2_bw: 70.0e6,
            packet_bytes: 1250,
            duration: 150.0,
        }
    }
}

/// The SmartPointer workload generator.
pub struct SmartPointer {
    source: FramedSource,
    per_frame_packets: Vec<u64>,
}

impl SmartPointer {
    /// Builds the three-stream workload.
    pub fn new(cfg: SmartPointerConfig) -> Self {
        let specs = Self::specs(cfg);
        let frame_bytes = |bw: f64| (bw / (8.0 * FPS)).round() as u32;
        let frames = vec![
            frame_bytes(ATOM_BW),
            frame_bytes(BOND1_BW),
            frame_bytes(cfg.bond2_bw),
        ];
        let source = FramedSource::new(specs, frames, FPS, cfg.duration);
        let per_frame_packets = (0..3).map(|s| source.packets_per_frame(s) as u64).collect();
        Self {
            source,
            per_frame_packets,
        }
    }

    /// The stream table: Atom and Bond1 with 95% probabilistic
    /// guarantees, Bond2 best-effort.
    pub fn specs(cfg: SmartPointerConfig) -> Vec<StreamSpec> {
        vec![
            StreamSpec::probabilistic(ATOM, "Atom", ATOM_BW, GUARANTEE_P, cfg.packet_bytes),
            StreamSpec::probabilistic(BOND1, "Bond1", BOND1_BW, GUARANTEE_P, cfg.packet_bytes),
            StreamSpec::best_effort(BOND2, "Bond2", cfg.bond2_bw, cfg.packet_bytes),
        ]
    }

    /// A frame tracker sized for this workload (critical streams only —
    /// Bond2 frames are not latency-relevant).
    pub fn frame_tracker(&self) -> FrameTracker {
        let mut per_frame = self.per_frame_packets.clone();
        per_frame[BOND2] = 0;
        FrameTracker::new(per_frame)
    }

    /// Packets per frame of a stream.
    pub fn packets_per_frame(&self, stream: usize) -> u64 {
        self.per_frame_packets[stream]
    }
}

impl Workload for SmartPointer {
    fn specs(&self) -> &[StreamSpec] {
        self.source.specs()
    }

    fn next_arrival(&mut self) -> Option<crate::workload::Arrival> {
        self.source.next_arrival()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_paper_numbers() {
        let specs = SmartPointer::specs(SmartPointerConfig::default());
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[ATOM].required_bw, 3.249e6);
        assert_eq!(specs[BOND1].required_bw, 22.148e6);
        assert!(specs[BOND2].guarantee.is_best_effort());
        match specs[ATOM].guarantee {
            iqpaths_core::stream::Guarantee::Probabilistic { p } => assert_eq!(p, 0.95),
            _ => panic!("Atom must be probabilistic"),
        }
    }

    #[test]
    fn offered_rates_match_requirements() {
        let cfg = SmartPointerConfig {
            duration: 4.0,
            ..Default::default()
        };
        let mut sp = SmartPointer::new(cfg);
        let mut bits = [0.0f64; 3];
        while let Some(a) = sp.next_arrival() {
            bits[a.stream] += a.bytes as f64 * 8.0;
        }
        let rate = |b: f64| b / cfg.duration;
        assert!((rate(bits[ATOM]) - ATOM_BW).abs() / ATOM_BW < 0.01);
        assert!((rate(bits[BOND1]) - BOND1_BW).abs() / BOND1_BW < 0.01);
        assert!((rate(bits[BOND2]) - cfg.bond2_bw).abs() / cfg.bond2_bw < 0.01);
    }

    #[test]
    fn frames_arrive_at_25fps() {
        let cfg = SmartPointerConfig {
            duration: 1.0,
            ..Default::default()
        };
        let mut sp = SmartPointer::new(cfg);
        let mut atom_times = std::collections::BTreeSet::new();
        while let Some(a) = sp.next_arrival() {
            if a.stream == ATOM {
                atom_times.insert((a.at * 1000.0).round() as u64);
            }
        }
        assert_eq!(atom_times.len(), 25);
        let times: Vec<u64> = atom_times.into_iter().collect();
        assert_eq!(times[1] - times[0], 40); // 40 ms cadence
    }

    #[test]
    fn tracker_ignores_bond2() {
        let sp = SmartPointer::new(SmartPointerConfig {
            duration: 1.0,
            ..Default::default()
        });
        let mut ft = sp.frame_tracker();
        for seq in 0..1000 {
            ft.on_delivery(BOND2, seq, seq as f64);
        }
        assert_eq!(ft.frames_completed(BOND2), 0);
        // Atom frames complete normally.
        let ppf = sp.packets_per_frame(ATOM);
        for seq in 0..ppf {
            ft.on_delivery(ATOM, seq, 0.01 * seq as f64);
        }
        assert_eq!(ft.frames_completed(ATOM), 1);
    }
}
