//! Workload plumbing: packet arrivals, frame generators, frame-level
//! delivery tracking.

use iqpaths_core::stream::StreamSpec;

/// One packet arrival emitted by an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time in seconds.
    pub at: f64,
    /// Target stream index.
    pub stream: usize,
    /// Packet size in bytes.
    pub bytes: u32,
}

/// A packet-arrival source. Arrivals must be emitted in non-decreasing
/// time order.
pub trait Workload {
    /// The stream table this workload feeds.
    fn specs(&self) -> &[StreamSpec];

    /// Next arrival, or `None` when the workload is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;
}

/// A periodic framed source: every `1/fps` seconds each configured
/// stream emits one frame of `frame_bytes`, fragmented into packets of
/// at most `packet_bytes`.
#[derive(Debug, Clone)]
pub struct FramedSource {
    specs: Vec<StreamSpec>,
    /// Per stream: (frame size in bytes, packet size in bytes).
    frames: Vec<(u32, u32)>,
    fps: f64,
    duration: f64,
    /// Generation state.
    frame_idx: u64,
    pending: std::collections::VecDeque<Arrival>,
}

impl FramedSource {
    /// Builds a framed source.
    ///
    /// `frames[i]` is the per-frame byte count for stream `i`; packets
    /// are cut at `specs[i].packet_bytes`.
    ///
    /// # Panics
    /// Panics on mismatched lengths or non-positive fps/duration.
    pub fn new(specs: Vec<StreamSpec>, frames: Vec<u32>, fps: f64, duration: f64) -> Self {
        assert_eq!(specs.len(), frames.len());
        assert!(fps > 0.0 && duration > 0.0);
        let frames = frames
            .iter()
            .zip(&specs)
            .map(|(&f, s)| (f, s.packet_bytes))
            .collect();
        Self {
            specs,
            frames,
            fps,
            duration,
            frame_idx: 0,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// Packets per frame for stream `i` (ceil division).
    pub fn packets_per_frame(&self, stream: usize) -> u32 {
        let (frame, pkt) = self.frames[stream];
        frame.div_ceil(pkt)
    }

    fn refill(&mut self) {
        let t = self.frame_idx as f64 / self.fps;
        if t >= self.duration {
            return;
        }
        for (stream, &(frame_bytes, pkt_bytes)) in self.frames.iter().enumerate() {
            let mut remaining = frame_bytes;
            while remaining > 0 {
                let sz = remaining.min(pkt_bytes);
                self.pending.push_back(Arrival {
                    at: t,
                    stream,
                    bytes: sz,
                });
                remaining -= sz;
            }
        }
        self.frame_idx += 1;
    }
}

impl Workload for FramedSource {
    fn specs(&self) -> &[StreamSpec] {
        &self.specs
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.pending.is_empty() {
            self.refill();
        }
        self.pending.pop_front()
    }
}

/// Tracks frame completion at the client: a frame of stream `i` is
/// complete when all its packets have been delivered. Packet `seq` of
/// stream `i` belongs to frame `seq / packets_per_frame`.
///
/// Produces the frame-completion time series from which the paper's
/// jitter numbers ("reduced from 2.0 ms with MSFQ to 1.4 ms with PGOS")
/// are computed.
#[derive(Debug, Clone)]
pub struct FrameTracker {
    per_frame: Vec<u64>,
    /// (next expected frame, packets seen in it, completion times).
    progress: Vec<(u64, u64)>,
    completions: Vec<Vec<f64>>,
}

impl FrameTracker {
    /// Tracker for streams whose frames contain `per_frame[i]` packets.
    /// Streams with `per_frame[i] == 0` are untracked (bulk streams).
    pub fn new(per_frame: Vec<u64>) -> Self {
        let n = per_frame.len();
        Self {
            per_frame,
            progress: vec![(0, 0); n],
            completions: vec![Vec::new(); n],
        }
    }

    /// Records the delivery of packet `seq` of `stream` at time `at`
    /// (seconds). Deliveries may arrive out of order across frames; a
    /// frame completes when its packet count is reached.
    pub fn on_delivery(&mut self, stream: usize, _seq: u64, at: f64) {
        let need = self.per_frame[stream];
        if need == 0 {
            return;
        }
        let (frame, seen) = &mut self.progress[stream];
        *seen += 1;
        if *seen >= need {
            self.completions[stream].push(at);
            *frame += 1;
            *seen = 0;
        }
    }

    /// Frame completion times of a stream.
    pub fn completions(&self, stream: usize) -> &[f64] {
        &self.completions[stream]
    }

    /// Mean inter-completion jitter of a stream in seconds.
    pub fn jitter(&self, stream: usize) -> f64 {
        iqpaths_stats::metrics::interarrival_jitter(&self.completions[stream])
    }

    /// Completed frames of a stream.
    pub fn frames_completed(&self, stream: usize) -> usize {
        self.completions[stream].len()
    }

    /// Minimum playback startup delay for gap-free rendering at `fps`:
    /// with frame `k` generated at `k/fps` and completed at `c_k`,
    /// playback starting `D` after generation never underruns iff
    /// `D = max_k (c_k − k/fps)`.
    ///
    /// The paper's technical report shows PGOS "reduces the
    /// server/client buffer size requirement and makes data transfer
    /// less bursty" compared with average-bandwidth prediction; the
    /// client buffer must hold `D · rate` bytes.
    pub fn startup_delay(&self, stream: usize, fps: f64) -> f64 {
        assert!(fps > 0.0, "fps must be positive");
        self.completions[stream]
            .iter()
            .enumerate()
            .map(|(k, &c)| c - k as f64 / fps)
            .fold(0.0f64, f64::max)
    }

    /// Client buffer requirement in bytes for gap-free playback of a
    /// stream delivered at `rate_bps`.
    pub fn buffer_bytes(&self, stream: usize, fps: f64, rate_bps: f64) -> f64 {
        self.startup_delay(stream, fps) * rate_bps / 8.0
    }
}

/// Merges several workloads into one time-ordered arrival source (used
/// when an experiment runs two applications side by side).
pub struct MergedWorkload {
    sources: Vec<Box<dyn Workload>>,
    /// Lookahead per source.
    heads: Vec<Option<Arrival>>,
    specs: Vec<StreamSpec>,
}

impl MergedWorkload {
    /// Merges `sources`; their stream indices must already be globally
    /// dense and disjoint, and their specs are concatenated in order.
    pub fn new(mut sources: Vec<Box<dyn Workload>>) -> Self {
        let mut specs = Vec::new();
        for s in &sources {
            specs.extend(s.specs().iter().cloned());
        }
        let heads = sources.iter_mut().map(|s| s.next_arrival()).collect();
        Self {
            sources,
            heads,
            specs,
        }
    }
}

impl Workload for MergedWorkload {
    fn specs(&self) -> &[StreamSpec] {
        &self.specs
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        let (idx, _) = self
            .heads
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.map(|a| (i, a.at)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite times"))?;
        let out = self.heads[idx].take();
        self.heads[idx] = self.sources[idx].next_arrival();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(i: usize, pkt: u32) -> StreamSpec {
        StreamSpec::best_effort(i, format!("s{i}"), 1.0e6, pkt)
    }

    #[test]
    fn framed_source_emits_fragmented_frames() {
        let src_specs = vec![spec(0, 1000)];
        let mut src = FramedSource::new(src_specs, vec![2500], 10.0, 0.25);
        assert_eq!(src.packets_per_frame(0), 3);
        let mut arrivals = Vec::new();
        while let Some(a) = src.next_arrival() {
            arrivals.push(a);
        }
        // 3 frames (t = 0.0, 0.1, 0.2) × 3 packets.
        assert_eq!(arrivals.len(), 9);
        assert_eq!(arrivals[0].bytes, 1000);
        assert_eq!(arrivals[2].bytes, 500); // remainder packet
        assert!((arrivals[3].at - 0.1).abs() < 1e-12);
        // Time-ordered.
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn framed_source_multiple_streams_share_cadence() {
        let src_specs = vec![spec(0, 1000), spec(1, 500)];
        let mut src = FramedSource::new(src_specs, vec![1000, 1000], 5.0, 0.2);
        let mut count = [0usize; 2];
        while let Some(a) = src.next_arrival() {
            count[a.stream] += 1;
        }
        assert_eq!(count[0], 1); // 1 frame × 1 packet
        assert_eq!(count[1], 2); // 1 frame × 2 packets
    }

    #[test]
    fn frame_tracker_completion_and_jitter() {
        let mut ft = FrameTracker::new(vec![2, 0]);
        ft.on_delivery(0, 0, 0.01);
        assert_eq!(ft.frames_completed(0), 0);
        ft.on_delivery(0, 1, 0.04);
        assert_eq!(ft.frames_completed(0), 1);
        ft.on_delivery(0, 2, 0.05);
        ft.on_delivery(0, 3, 0.08);
        assert_eq!(ft.frames_completed(0), 2);
        assert_eq!(ft.completions(0), &[0.04, 0.08]);
        // Untracked stream ignored.
        ft.on_delivery(1, 0, 0.1);
        assert_eq!(ft.frames_completed(1), 0);
    }

    #[test]
    fn startup_delay_and_buffer() {
        let mut ft = FrameTracker::new(vec![1]);
        // Frames generated at 0, 0.1, 0.2 (10 fps); completed with a
        // worst lateness of 0.25 s on frame 1.
        ft.on_delivery(0, 0, 0.05);
        ft.on_delivery(0, 1, 0.35);
        ft.on_delivery(0, 2, 0.30);
        let d = ft.startup_delay(0, 10.0);
        assert!((d - 0.25).abs() < 1e-12, "delay {d}");
        // 8 Mbps stream → 0.25 s of buffer = 250 kB.
        assert!((ft.buffer_bytes(0, 10.0, 8.0e6) - 250_000.0).abs() < 1.0);
        // Early completions never yield negative delay.
        let mut ft2 = FrameTracker::new(vec![1]);
        ft2.on_delivery(0, 0, 0.0);
        assert_eq!(ft2.startup_delay(0, 10.0), 0.0);
    }

    #[test]
    fn merged_workload_orders_across_sources() {
        let a = FramedSource::new(vec![spec(0, 1000)], vec![1000], 10.0, 0.3);
        let b = FramedSource::new(vec![spec(1, 1000)], vec![1000], 4.0, 0.3);
        let mut m = MergedWorkload::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(m.specs().len(), 2);
        let mut last = 0.0;
        let mut n = 0;
        while let Some(arr) = m.next_arrival() {
            assert!(arr.at >= last - 1e-12);
            last = arr.at;
            n += 1;
        }
        assert_eq!(n, 3 + 2); // 10 fps → t=0,.1,.2; 4 fps → t=0,.25
    }
}
