//! The IQPG-GridFTP climate-record workload (§6.2).
//!
//! "We use a climate database in our experiment as simulation of the
//! Earth System Grid II. Each record in this database has three data
//! components: (1) the numeric data (approximately 172.8 KB, denoted by
//! 'DT1'), and (2) and (3) are low resolution images (128 KB, 'DT2')
//! and high resolution images (384 KB, 'DT3'). … we want to ensure that
//! the numeric data and low resolution images receive their required
//! bandwidths of at least 25 records/second for real-time data
//! streaming. In addition, we also want to fully utilize bandwidth to
//! transfer high-resolution data."

use crate::workload::{FrameTracker, FramedSource, Workload};
use iqpaths_core::stream::StreamSpec;

/// Numeric-data stream index.
pub const DT1: usize = 0;
/// Low-resolution image stream index.
pub const DT2: usize = 1;
/// High-resolution image stream index (best effort).
pub const DT3: usize = 2;

/// DT1 record component size in bytes (172.8 KB).
pub const DT1_BYTES: u32 = 172_800;
/// DT2 record component size in bytes (128 KB).
pub const DT2_BYTES: u32 = 131_072;
/// DT3 record component size in bytes (384 KB).
pub const DT3_BYTES: u32 = 393_216;

/// Required record rate for DT1/DT2.
pub const RECORDS_PER_SEC: f64 = 25.0;

/// Configuration of the GridFTP transfer.
#[derive(Debug, Clone, Copy)]
pub struct GridFtpConfig {
    /// Guarantee probability for DT1/DT2 under IQPG-GridFTP.
    pub guarantee_p: f64,
    /// Transfer block size in bytes (GridFTP "block-size").
    pub block_bytes: u32,
    /// Offered DT3 record rate (records/s). The paper streams DT3 "as
    /// fast as possible"; offering it at the same 25 rec/s cadence
    /// (76.8 Mbps) over-subscribes the testbed paths as in the paper.
    pub dt3_records_per_sec: f64,
    /// Workload duration in seconds.
    pub duration: f64,
}

impl Default for GridFtpConfig {
    fn default() -> Self {
        Self {
            guarantee_p: 0.95,
            block_bytes: 1280,
            dt3_records_per_sec: RECORDS_PER_SEC,
            duration: 150.0,
        }
    }
}

/// Required bandwidth of a record component at 25 records/s.
pub fn required_bw(component_bytes: u32) -> f64 {
    component_bytes as f64 * 8.0 * RECORDS_PER_SEC
}

/// The GridFTP record-stream workload.
pub struct GridFtp {
    dt12: FramedSource,
    dt3: FramedSource,
    specs: Vec<StreamSpec>,
    head12: Option<crate::workload::Arrival>,
    head3: Option<crate::workload::Arrival>,
    per_record_packets: Vec<u64>,
}

impl GridFtp {
    /// Builds the three-stream record workload.
    pub fn new(cfg: GridFtpConfig) -> Self {
        let specs = Self::specs(cfg);
        let mut dt12 = FramedSource::new(
            vec![specs[DT1].clone(), specs[DT2].clone()],
            vec![DT1_BYTES, DT2_BYTES],
            RECORDS_PER_SEC,
            cfg.duration,
        );
        // DT3 arrives on its own cadence; its stream index inside the
        // sub-source is 0, remapped to DT3 on emission.
        let mut dt3 = FramedSource::new(
            vec![StreamSpec::best_effort(
                0,
                "DT3-inner",
                0.0,
                cfg.block_bytes,
            )],
            vec![DT3_BYTES],
            cfg.dt3_records_per_sec,
            cfg.duration,
        );
        let per_record_packets = vec![
            dt12.packets_per_frame(0) as u64,
            dt12.packets_per_frame(1) as u64,
            dt3.packets_per_frame(0) as u64,
        ];
        let head12 = dt12.next_arrival();
        let head3 = dt3.next_arrival();
        Self {
            dt12,
            dt3,
            specs,
            head12,
            head3,
            per_record_packets,
        }
    }

    /// The stream table: DT1/DT2 guaranteed at 25 records/s, DT3 best
    /// effort.
    pub fn specs(cfg: GridFtpConfig) -> Vec<StreamSpec> {
        vec![
            StreamSpec::probabilistic(
                DT1,
                "DT1",
                required_bw(DT1_BYTES),
                cfg.guarantee_p,
                cfg.block_bytes,
            ),
            StreamSpec::probabilistic(
                DT2,
                "DT2",
                required_bw(DT2_BYTES),
                cfg.guarantee_p,
                cfg.block_bytes,
            ),
            StreamSpec::best_effort(
                DT3,
                "DT3",
                DT3_BYTES as f64 * 8.0 * cfg.dt3_records_per_sec,
                cfg.block_bytes,
            ),
        ]
    }

    /// A tracker counting completed records per component.
    pub fn record_tracker(&self) -> FrameTracker {
        FrameTracker::new(self.per_record_packets.clone())
    }

    /// Blocks per record of a component.
    pub fn packets_per_record(&self, stream: usize) -> u64 {
        self.per_record_packets[stream]
    }
}

impl Workload for GridFtp {
    fn specs(&self) -> &[StreamSpec] {
        &self.specs
    }

    fn next_arrival(&mut self) -> Option<crate::workload::Arrival> {
        // Two-way merge of the DT1/DT2 source and the DT3 source.
        let take12 = match (&self.head12, &self.head3) {
            (None, None) => return None,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(a), Some(b)) => a.at <= b.at,
        };
        if take12 {
            let out = self.head12.take();
            self.head12 = self.dt12.next_arrival();
            out
        } else {
            let mut out = self.head3.take();
            if let Some(a) = &mut out {
                a.stream = DT3;
            }
            self.head3 = self.dt3.next_arrival();
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn required_bandwidths_match_paper() {
        // DT1: 172.8 KB × 8 × 25 = 34.56 Mbps (paper: ~33.94–34.55).
        assert!((required_bw(DT1_BYTES) - 34.56e6).abs() < 1e3);
        // DT2: 128 KiB × 8 × 25 = 26.2 Mbps.
        assert!((required_bw(DT2_BYTES) - 26.2144e6).abs() < 1e3);
    }

    #[test]
    fn offered_rates_match_record_cadence() {
        let cfg = GridFtpConfig {
            duration: 2.0,
            ..Default::default()
        };
        let mut g = GridFtp::new(cfg);
        let mut bits = [0.0f64; 3];
        let mut last = 0.0;
        while let Some(a) = g.next_arrival() {
            assert!(a.at >= last - 1e-12, "out of order");
            last = a.at;
            bits[a.stream] += a.bytes as f64 * 8.0;
        }
        assert!((bits[DT1] / 2.0 - required_bw(DT1_BYTES)).abs() < 1e4);
        assert!((bits[DT2] / 2.0 - required_bw(DT2_BYTES)).abs() < 1e4);
        assert!((bits[DT3] / 2.0 - 78.6432e6).abs() < 1e5);
    }

    #[test]
    fn record_tracker_counts_records() {
        let g = GridFtp::new(GridFtpConfig {
            duration: 1.0,
            ..Default::default()
        });
        let mut t = g.record_tracker();
        let ppr = g.packets_per_record(DT1);
        assert_eq!(ppr, (DT1_BYTES as u64).div_ceil(1280));
        for seq in 0..ppr * 3 {
            t.on_delivery(DT1, seq, seq as f64 * 0.001);
        }
        assert_eq!(t.frames_completed(DT1), 3);
    }

    #[test]
    fn dt3_is_best_effort() {
        let specs = GridFtp::specs(GridFtpConfig::default());
        assert!(specs[DT3].guarantee.is_best_effort());
        assert!(!specs[DT1].guarantee.is_best_effort());
    }

    #[test]
    fn dt3_cadence_configurable() {
        let cfg = GridFtpConfig {
            dt3_records_per_sec: 5.0,
            duration: 1.0,
            ..Default::default()
        };
        let mut g = GridFtp::new(cfg);
        let mut dt3_bits = 0.0;
        while let Some(a) = g.next_arrival() {
            if a.stream == DT3 {
                dt3_bits += a.bytes as f64 * 8.0;
            }
        }
        assert!((dt3_bits - DT3_BYTES as f64 * 8.0 * 5.0).abs() < 1e3);
    }
}
