//! MPEG-4 fine-grained-scalable (FGS) layered video (extension
//! experiment).
//!
//! The paper's §1/§6 reference a technical-report experiment showing
//! "substantially improved service level QoS IQ-Paths offers when
//! applied to MPEG-4 Fine-Grained Scalable video streaming", building
//! on Kim & Ammar's optimal FGS quality adaptation. The workload: a
//! base layer that must arrive (strong guarantee) plus enhancement
//! layers of decreasing utility, with VBR frame sizes. A frame's
//! rendered quality is the number of contiguous layers delivered by its
//! deadline.

use crate::workload::{Arrival, Workload};
use iqpaths_core::stream::StreamSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the layered-video workload.
#[derive(Debug, Clone)]
pub struct Mpeg4Config {
    /// Mean rate of each layer (bits/s), base layer first.
    pub layer_rates: Vec<f64>,
    /// Guarantee probability of each guaranteed layer (`None` = best
    /// effort). Must align with `layer_rates`.
    pub layer_guarantees: Vec<Option<f64>>,
    /// Frame rate.
    pub fps: f64,
    /// VBR amplitude: per-frame sizes vary by ± this fraction (sine +
    /// noise), the "variable-bit-rate nature of layered video".
    pub vbr_frac: f64,
    /// Scene-length of the VBR sine component in seconds.
    pub scene_period: f64,
    /// Packet size in bytes.
    pub packet_bytes: u32,
    /// Duration in seconds.
    pub duration: f64,
    /// RNG seed for the VBR noise.
    pub seed: u64,
}

impl Default for Mpeg4Config {
    fn default() -> Self {
        Self {
            // Base + two FGS enhancement layers.
            layer_rates: vec![1.0e6, 2.0e6, 4.0e6],
            layer_guarantees: vec![Some(0.99), Some(0.9), None],
            fps: 30.0,
            vbr_frac: 0.4,
            scene_period: 8.0,
            packet_bytes: 1250,
            duration: 60.0,
            seed: 42,
        }
    }
}

/// The layered-video workload generator.
pub struct Mpeg4Video {
    specs: Vec<StreamSpec>,
    cfg: Mpeg4Config,
    rng: StdRng,
    frame_idx: u64,
    pending: std::collections::VecDeque<Arrival>,
}

impl Mpeg4Video {
    /// Builds the workload.
    ///
    /// # Panics
    /// Panics on empty/mismatched layer tables.
    pub fn new(cfg: Mpeg4Config) -> Self {
        assert!(!cfg.layer_rates.is_empty(), "need at least a base layer");
        assert_eq!(cfg.layer_rates.len(), cfg.layer_guarantees.len());
        let specs = Self::specs(&cfg);
        Self {
            specs,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
            frame_idx: 0,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// The stream table: one stream per layer.
    pub fn specs(cfg: &Mpeg4Config) -> Vec<StreamSpec> {
        cfg.layer_rates
            .iter()
            .zip(&cfg.layer_guarantees)
            .enumerate()
            .map(|(i, (&rate, &g))| match g {
                Some(p) => {
                    StreamSpec::probabilistic(i, format!("layer{i}"), rate, p, cfg.packet_bytes)
                }
                None => StreamSpec::best_effort(i, format!("layer{i}"), rate, cfg.packet_bytes),
            })
            .collect()
    }

    /// Number of layers.
    pub fn layers(&self) -> usize {
        self.cfg.layer_rates.len()
    }

    fn refill(&mut self) {
        let t = self.frame_idx as f64 / self.cfg.fps;
        if t >= self.cfg.duration {
            return;
        }
        // Shared VBR modulation: all layers of a frame swell together
        // (scene complexity), with per-frame noise.
        let sine = (2.0 * std::f64::consts::PI * t / self.cfg.scene_period).sin();
        let noise: f64 = self.rng.gen_range(-0.5..=0.5);
        let factor = (1.0 + self.cfg.vbr_frac * (0.7 * sine + 0.6 * noise)).max(0.1);
        for (layer, &rate) in self.cfg.layer_rates.iter().enumerate() {
            let frame_bytes = (rate / (8.0 * self.cfg.fps) * factor).round() as u32;
            let mut remaining = frame_bytes.max(1);
            while remaining > 0 {
                let sz = remaining.min(self.cfg.packet_bytes);
                self.pending.push_back(Arrival {
                    at: t,
                    stream: layer,
                    bytes: sz,
                });
                remaining -= sz;
            }
        }
        self.frame_idx += 1;
    }
}

impl Workload for Mpeg4Video {
    fn specs(&self) -> &[StreamSpec] {
        &self.specs
    }

    fn next_arrival(&mut self) -> Option<Arrival> {
        if self.pending.is_empty() {
            self.refill();
        }
        self.pending.pop_front()
    }
}

/// Per-frame quality accounting: a frame renders at quality `q` when
/// layers `0..q` were all delivered by the frame deadline.
#[derive(Debug, Clone)]
pub struct QualityTracker {
    layers: usize,
    fps: f64,
    deadline_slack: f64,
    /// `delivered[layer][frame] = bits delivered by deadline` is
    /// approximated by counting on-time bytes per (layer, frame).
    on_time: Vec<std::collections::HashMap<u64, u64>>,
    expected: Vec<std::collections::HashMap<u64, u64>>,
}

impl QualityTracker {
    /// Tracker for `layers` layers at `fps`, allowing `deadline_slack`
    /// seconds of decode buffer.
    pub fn new(layers: usize, fps: f64, deadline_slack: f64) -> Self {
        Self {
            layers,
            fps,
            deadline_slack,
            on_time: vec![Default::default(); layers],
            expected: vec![Default::default(); layers],
        }
    }

    fn frame_of(&self, created: f64) -> u64 {
        (created * self.fps).round() as u64
    }

    /// Registers a generated packet (from the arrival stream).
    pub fn on_arrival(&mut self, layer: usize, created: f64, bytes: u32) {
        let f = self.frame_of(created);
        *self.expected[layer].entry(f).or_insert(0) += bytes as u64;
    }

    /// Registers a delivery; counts it when within the frame deadline.
    pub fn on_delivery(&mut self, layer: usize, created: f64, delivered: f64, bytes: u32) {
        let f = self.frame_of(created);
        let deadline = created + self.deadline_slack;
        if delivered <= deadline {
            *self.on_time[layer].entry(f).or_insert(0) += bytes as u64;
        }
    }

    /// Quality of frame `f`: highest `q` such that layers `0..q` each
    /// delivered ≥ 95% of their bytes on time.
    pub fn frame_quality(&self, f: u64) -> usize {
        let mut q = 0;
        for layer in 0..self.layers {
            let need = self.expected[layer].get(&f).copied().unwrap_or(0);
            let got = self.on_time[layer].get(&f).copied().unwrap_or(0);
            if need == 0 || (got as f64) < need as f64 * 0.95 {
                break;
            }
            q = layer + 1;
        }
        q
    }

    /// Mean quality over frames `0..n`.
    pub fn mean_quality(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        (0..n).map(|f| self.frame_quality(f) as f64).sum::<f64>() / n as f64
    }

    /// Fraction of frames `0..n` whose base layer was on time (playable
    /// frames).
    pub fn playable_fraction(&self, n: u64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        (0..n).filter(|&f| self.frame_quality(f) >= 1).count() as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_follow_layer_tables() {
        let cfg = Mpeg4Config::default();
        let specs = Mpeg4Video::specs(&cfg);
        assert_eq!(specs.len(), 3);
        assert!(!specs[0].guarantee.is_best_effort());
        assert!(specs[2].guarantee.is_best_effort());
    }

    #[test]
    fn offered_rate_tracks_layer_rates_on_average() {
        let cfg = Mpeg4Config {
            duration: 30.0,
            ..Default::default()
        };
        let mut v = Mpeg4Video::new(cfg.clone());
        let mut bits = [0.0; 3];
        while let Some(a) = v.next_arrival() {
            bits[a.stream] += a.bytes as f64 * 8.0;
        }
        for (layer, &rate) in cfg.layer_rates.iter().enumerate() {
            let measured = bits[layer] / cfg.duration;
            assert!(
                (measured - rate).abs() / rate < 0.15,
                "layer {layer}: measured {measured} vs {rate}"
            );
        }
    }

    #[test]
    fn vbr_varies_frame_sizes() {
        let cfg = Mpeg4Config {
            duration: 10.0,
            ..Default::default()
        };
        let mut v = Mpeg4Video::new(cfg);
        let mut per_frame: std::collections::HashMap<u64, u64> = Default::default();
        while let Some(a) = v.next_arrival() {
            if a.stream == 0 {
                *per_frame.entry((a.at * 30.0).round() as u64).or_insert(0) += a.bytes as u64;
            }
        }
        let sizes: Vec<f64> = per_frame.values().map(|&b| b as f64).collect();
        let s = iqpaths_stats::timeseries::SeriesSummary::of(&sizes).unwrap();
        assert!(s.cov > 0.1, "VBR cov {} too flat", s.cov);
    }

    #[test]
    fn quality_tracker_counts_layers() {
        let mut qt = QualityTracker::new(3, 30.0, 0.5);
        // Frame 0: all three layers on time.
        for layer in 0..3 {
            qt.on_arrival(layer, 0.0, 1000);
            qt.on_delivery(layer, 0.0, 0.1, 1000);
        }
        assert_eq!(qt.frame_quality(0), 3);
        // Frame 1: base on time, layer 1 late → quality 1 even though
        // layer 2 was on time (contiguity).
        for layer in 0..3 {
            qt.on_arrival(layer, 1.0 / 30.0, 1000);
        }
        qt.on_delivery(0, 1.0 / 30.0, 0.2, 1000);
        qt.on_delivery(1, 1.0 / 30.0, 9.0, 1000); // late
        qt.on_delivery(2, 1.0 / 30.0, 0.2, 1000);
        assert_eq!(qt.frame_quality(1), 1);
        assert!((qt.mean_quality(2) - 2.0).abs() < 1e-12);
        assert_eq!(qt.playable_fraction(2), 1.0);
    }

    #[test]
    fn missing_base_layer_means_unplayable() {
        let mut qt = QualityTracker::new(2, 30.0, 0.1);
        qt.on_arrival(0, 0.0, 1000);
        qt.on_delivery(0, 0.0, 5.0, 1000); // way late
        assert_eq!(qt.frame_quality(0), 0);
        assert_eq!(qt.playable_fraction(1), 0.0);
    }
}
