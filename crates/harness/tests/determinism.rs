//! The engine's core promise, pinned: a cell's serialized result is
//! byte-identical whether the sweep runs on one thread, on many, or the
//! cell runs alone — across all three CDF backends the conformance
//! suite sweeps.
//!
//! This is what makes the cache sound (a cached result equals a fresh
//! one) and the EXPERIMENTS.md tables machine-reproducible.

use iqpaths_harness::engine::{run_isolated, run_sweep, EngineOpts};
use iqpaths_harness::sweeps::{CellTemplate, SweepSpec};
use iqpaths_harness::{CellKind, CellSpec};

/// A small but real matrix: all three sweep CDF backends × two
/// scenarios (one quiet, one faulted), just over the fault scenarios'
/// 40 s duration floor.
fn mini_matrix() -> SweepSpec {
    let mut templates = Vec::new();
    for mode in ["exact", "rolling", "sketch33"] {
        for scenario in ["no-fault", "blackout"] {
            templates.push(CellTemplate {
                group: String::new(),
                label: format!("{mode}/{scenario}"),
                kind: CellKind::Conformance {
                    mode: mode.to_string(),
                    scenario: scenario.to_string(),
                },
                duration: None,
                shards: None,
            });
        }
    }
    SweepSpec {
        name: "determinism_mini",
        about: "determinism-suite matrix",
        duration: 45.0,
        seeds: vec![5],
        shards: 1,
        cacheable: true,
        templates,
    }
}

fn texts(results: &[iqpaths_harness::CellResult]) -> Vec<String> {
    results.iter().map(|r| r.to_text()).collect()
}

#[test]
fn serial_parallel_and_isolated_execution_are_bit_identical() {
    let sweep = mini_matrix();
    let no_cache = |threads| EngineOpts {
        threads: Some(threads),
        use_cache: false,
        verbose: false,
    };

    let serial = run_sweep(&sweep, &no_cache(1));
    let parallel = run_sweep(&sweep, &no_cache(4));
    assert_eq!(
        texts(&serial.results),
        texts(&parallel.results),
        "parallel execution changed a cell result"
    );

    // Each cell, re-run alone (fresh engine, no sweep context), must
    // reproduce its in-sweep bytes: results depend on the spec only,
    // not on which cells ran beside it.
    for (spec, in_sweep) in sweep.expand().iter().zip(&serial.results) {
        let alone = run_isolated(spec);
        assert_eq!(
            alone.to_text(),
            in_sweep.to_text(),
            "isolated run of {} diverged from the sweep run",
            spec.id()
        );
    }
}

#[test]
fn axis_seed_is_never_used_raw_and_kinds_decorrelate() {
    // Same axis seed, different kinds → different derived seeds; and
    // no derived seed equals the raw axis seed for this matrix.
    let cells = mini_matrix().expand();
    let mut derived: Vec<u64> = cells.iter().map(CellSpec::cell_seed).collect();
    for (cell, &seed) in cells.iter().zip(&derived) {
        assert_ne!(seed, cell.seed, "{} runs with its raw axis seed", cell.id());
    }
    let n = derived.len();
    derived.sort_unstable();
    derived.dedup();
    assert_eq!(derived.len(), n, "two cells share a derived seed");
}

#[test]
fn cached_results_equal_fresh_ones() {
    // Point the cache at a private temp dir so this test cannot
    // interact with a real cache or a parallel test process.
    let dir = std::env::temp_dir().join(format!("iqp-determinism-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let sweep = {
        let mut s = mini_matrix();
        s.templates.truncate(2); // one mode, two scenarios — keep it quick
        s
    };
    let cached_opts = EngineOpts {
        threads: Some(2),
        use_cache: true,
        verbose: false,
    };
    std::env::set_var("IQP_CACHE_DIR", &dir);
    let cold = run_sweep(&sweep, &cached_opts);
    let warm = run_sweep(&sweep, &cached_opts);
    std::env::remove_var("IQP_CACHE_DIR");
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(cold.executed, sweep.expand().len());
    assert_eq!(warm.cached, sweep.expand().len());
    assert_eq!(warm.executed, 0, "warm run re-executed a cached cell");
    assert_eq!(texts(&cold.results), texts(&warm.results));
}
