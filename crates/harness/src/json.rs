//! Minimal JSON value, writer and parser.
//!
//! The workspace's `serde` resolves to a marker shim (no network, no
//! vendored registry), so the harness carries its own JSON layer —
//! exactly the subset cell serialization needs. Two properties matter
//! here beyond correctness:
//!
//! * **Canonical output.** Objects keep their insertion order and
//!   numbers render through Rust's shortest-round-trip `f64`/`u64`
//!   formatting, so serializing the same [`Json`] value always yields
//!   the same bytes — cell results can be compared (and cache-keyed)
//!   as strings.
//! * **Lossless numbers.** `f64` Display in Rust is
//!   shortest-that-round-trips, so `parse(write(x)) == x` bit-for-bit
//!   for every finite value; non-finite values serialize as `null`
//!   (JSON has no representation for them).

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact canonical string.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    // Integral values render without the trailing ".0"
                    // only when they round-trip exactly through u64/i64,
                    // keeping counters readable as integers.
                    if v.fract() == 0.0 && v.abs() < 9.0e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a position-annotated message on malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err("unexpected end of input".into());
    };
    match c {
        b'n' => expect(b, pos, "null").map(|()| Json::Null),
        b't' => expect(b, pos, "true").map(|()| Json::Bool(true)),
        b'f' => expect(b, pos, "false").map(|()| Json::Bool(false)),
        b'"' => parse_string(b, pos).map(Json::Str),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        b'-' | b'0'..=b'9' => {
            let start = *pos;
            *pos += 1;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
        c => Err(format!("unexpected byte `{}` at {}", c as char, *pos)),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, "\"")?;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        *pos += 4;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("bad \\u: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    c => return Err(format!("bad escape `\\{}`", c as char)),
                }
            }
            c if c < 0x80 => out.push(c as char),
            _ => {
                // Multi-byte UTF-8: find the char boundary and push it.
                let start = *pos - 1;
                let mut end = *pos;
                while end < b.len() && (b[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                let s = std::str::from_utf8(&b[start..end]).map_err(|e| e.to_string())?;
                out.push_str(s);
                *pos = end;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let doc = Json::Obj(vec![
            ("id".into(), Json::Str("cell/a b\"c".into())),
            ("n".into(), Json::Num(42.0)),
            ("x".into(), Json::Num(0.1 + 0.2)),
            ("ok".into(), Json::Bool(true)),
            (
                "arr".into(),
                Json::Arr(vec![Json::Null, Json::Num(-1.5e-9)]),
            ),
        ]);
        let text = doc.to_text();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        // Canonical: serializing again yields identical bytes.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        for v in [0.30000000000000004, 1.0 / 3.0, 6.02e23, 5e-324, 0.0] {
            let text = Json::Num(v).to_text();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} via {text}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(120.0).to_text(), "120");
        assert_eq!(Json::Num(-3.0).to_text(), "-3");
        assert_eq!(Json::Num(1.5).to_text(), "1.5");
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"abc").is_err());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""a\n\tAß""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\n\tAß");
    }
}
