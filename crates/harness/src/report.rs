//! Report generation: sweep results → markdown tables, generated
//! blocks in `EXPERIMENTS.md`, and CSV artifacts.
//!
//! `EXPERIMENTS.md` owns the prose; the numbers live inside marked
//! regions:
//!
//! ```text
//! <!-- BEGIN GENERATED: fault_sweep -->
//! | scenario | mode | ... |
//! <!-- END GENERATED: fault_sweep -->
//! ```
//!
//! [`patch_blocks`] replaces each region's body with freshly rendered
//! tables; [`check_blocks`] verifies the committed regions match what
//! the current code + sweeps produce (the `harness report --check` CI
//! gate). Everything rendered here is a deterministic function of the
//! sweep results, which are themselves deterministic per spec — so a
//! drifting block means the code changed behaviour without the tables
//! being regenerated.

use std::collections::BTreeMap;

use crate::cell::CellResult;
use crate::json::Json;

/// One named generated region.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Marker name (`fault_sweep`, `fig04`, …).
    pub name: String,
    /// Markdown body between the markers (no marker lines).
    pub body: String,
}

fn begin_marker(name: &str) -> String {
    format!("<!-- BEGIN GENERATED: {name} -->")
}

fn end_marker(name: &str) -> String {
    format!("<!-- END GENERATED: {name} -->")
}

/// Replaces each block's region in `doc`. Returns the patched document
/// and the names whose markers were not found (left for the caller to
/// report).
pub fn patch_blocks(doc: &str, blocks: &[Block]) -> (String, Vec<String>) {
    let mut out = doc.to_string();
    let mut missing = Vec::new();
    for b in blocks {
        let (begin, end) = (begin_marker(&b.name), end_marker(&b.name));
        let Some(start) = out.find(&begin) else {
            missing.push(b.name.clone());
            continue;
        };
        let body_start = start + begin.len();
        let Some(rel_end) = out[body_start..].find(&end) else {
            missing.push(b.name.clone());
            continue;
        };
        let body_end = body_start + rel_end;
        out.replace_range(body_start..body_end, &format!("\n{}", b.body));
    }
    (out, missing)
}

/// Compares each block against the committed region. Returns one
/// message per drifting or missing block; empty means clean.
pub fn check_blocks(doc: &str, blocks: &[Block]) -> Vec<String> {
    let mut problems = Vec::new();
    for b in blocks {
        let (begin, end) = (begin_marker(&b.name), end_marker(&b.name));
        let committed = doc.find(&begin).and_then(|start| {
            let body_start = start + begin.len();
            doc[body_start..]
                .find(&end)
                .map(|rel| &doc[body_start..body_start + rel])
        });
        match committed {
            None => problems.push(format!("block `{}`: markers not found", b.name)),
            Some(committed) if committed.trim() != b.body.trim() => {
                problems.push(format!(
                    "block `{}`: committed table drifts from regenerated output \
                     (run `harness report` to refresh)",
                    b.name
                ));
            }
            Some(_) => {}
        }
    }
    problems
}

/// Renders the generated blocks for one sweep's results. Unknown sweep
/// names produce no blocks.
pub fn blocks_for(sweep: &str, results: &[CellResult]) -> Vec<Block> {
    match sweep {
        "fig04_prediction" => vec![Block {
            name: "fig04".into(),
            body: fig04_table(results),
        }],
        "validation" => vec![Block {
            name: "validation".into(),
            body: validation_table(results),
        }],
        "seed_sweep" => vec![Block {
            name: "seed_sweep".into(),
            body: seed_sweep_table(results),
        }],
        "fault_sweep" => vec![Block {
            name: "fault_sweep".into(),
            body: conformance_table(results),
        }],
        "smoke" => vec![Block {
            name: "smoke".into(),
            body: conformance_table(results),
        }],
        "ablations" => vec![
            Block {
                name: "ablations".into(),
                body: ablations_table(results),
            },
            Block {
                name: "ablations-buffer".into(),
                body: buffer_table(results),
            },
        ],
        "sched_throughput" => vec![Block {
            name: "sched_throughput".into(),
            body: sched_throughput_table(results),
        }],
        "probe_budget" => vec![Block {
            name: "probe_budget".into(),
            body: probe_budget_table(results),
        }],
        "diversity" => vec![Block {
            name: "diversity".into(),
            body: diversity_table(results),
        }],
        "scalability" => vec![Block {
            name: "scalability".into(),
            body: scalability_table(results),
        }],
        _ => Vec::new(),
    }
}

/// Renders the CSV artifact for one sweep (name, contents), if the
/// sweep has one.
pub fn csv_for(sweep: &str, results: &[CellResult]) -> Option<(String, String)> {
    match sweep {
        "fig04_prediction" => Some(("fig04_prediction.csv".into(), fig04_csv(results))),
        "validation" => Some(("validation.csv".into(), validation_csv(results))),
        "seed_sweep" => Some(("seed_sweep.csv".into(), seed_sweep_csv(results))),
        "ablations" => Some(("ablations.csv".into(), ablations_csv(results))),
        "fault_sweep" => Some(("fault_sweep.md".into(), fault_sweep_artifact(results))),
        "sched_throughput" => Some((
            "BENCH_sched_throughput.json".into(),
            sched_throughput_json(results),
        )),
        "scalability" => Some(("BENCH_scalability.json".into(), scalability_json(results))),
        "probe_budget" => Some(("BENCH_probe_budget.json".into(), probe_budget_json(results))),
        "diversity" => Some(("BENCH_diversity.json".into(), diversity_json(results))),
        _ => None,
    }
}

fn get(r: &CellResult, name: &str) -> f64 {
    r.get(name).unwrap_or(f64::NAN)
}

fn fig04_table(results: &[CellResult]) -> String {
    let mut out = String::from(
        "| window (s) | MA err | SMA err | EWMA err | AR1 err | HOLT err | SMED err | percentile failure |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for r in results {
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} | **{:.3}** |\n",
            r.label.trim_start_matches("w=").trim_end_matches('s'),
            get(r, "ma_err"),
            get(r, "sma_err"),
            get(r, "ewma_err"),
            get(r, "ar1_err"),
            get(r, "holt_err"),
            get(r, "smed_err"),
            get(r, "percentile_failure_rate"),
        ));
    }
    out
}

fn fig04_csv(results: &[CellResult]) -> String {
    let mut csv = String::from(
        "window_s,ma_err,sma_err,ewma_err,ar1_err,holt_err,smed_err,mean_err,percentile_failure_rate\n",
    );
    for r in results {
        csv.push_str(&format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.5}\n",
            r.label.trim_start_matches("w=").trim_end_matches('s'),
            get(r, "ma_err"),
            get(r, "sma_err"),
            get(r, "ewma_err"),
            get(r, "ar1_err"),
            get(r, "holt_err"),
            get(r, "smed_err"),
            get(r, "mean_err"),
            get(r, "percentile_failure_rate"),
        ));
    }
    csv
}

fn validation_table(results: &[CellResult]) -> String {
    let mut out = String::from(
        "| demand (Mbps) | demand quantile | Lemma 1 prob | measured meet | Lemma 2 E[Z] | measured E[Z] |\n\
         |---|---|---|---|---|---|\n",
    );
    for r in results {
        out.push_str(&format!(
            "| {:.1} | {:.2} | {:.3} | {:.3} | {:.2} | {:.2} |\n",
            get(r, "rate_bps") / 1e6,
            get(r, "demand_quantile"),
            get(r, "lemma1_prob"),
            get(r, "measured_meet"),
            get(r, "lemma2_bound"),
            get(r, "measured_shortfall"),
        ));
    }
    out
}

fn validation_csv(results: &[CellResult]) -> String {
    let mut csv = String::from(
        "demand_quantile,rate_bps,lemma1_prob,measured_meet,lemma2_bound,measured_shortfall\n",
    );
    for r in results {
        csv.push_str(&format!(
            "{},{:.0},{:.4},{:.4},{:.3},{:.3}\n",
            get(r, "demand_quantile"),
            get(r, "rate_bps"),
            get(r, "lemma1_prob"),
            get(r, "measured_meet"),
            get(r, "lemma2_bound"),
            get(r, "measured_shortfall"),
        ));
    }
    csv
}

fn seed_sweep_table(results: &[CellResult]) -> String {
    // Group by scheduler label, preserving first-seen order.
    let mut order: Vec<&str> = Vec::new();
    let mut by_sched: BTreeMap<&str, Vec<&CellResult>> = BTreeMap::new();
    for r in results {
        if !order.contains(&r.label.as_str()) {
            order.push(&r.label);
        }
        by_sched.entry(&r.label).or_default().push(r);
    }
    let mut out =
        String::from("| scheduler | mean min-meet | sd | worst seed |\n|---|---|---|---|\n");
    for sched in order {
        let rows = &by_sched[sched];
        let meets: Vec<f64> = rows.iter().map(|r| get(r, "min_meet_fraction")).collect();
        let worst = rows
            .iter()
            .min_by(|a, b| {
                get(a, "min_meet_fraction")
                    .partial_cmp(&get(b, "min_meet_fraction"))
                    .expect("finite meets")
            })
            .expect("non-empty scheduler group");
        out.push_str(&format!(
            "| {} | {:.3} | {:.3} | {:.3} (seed {}) |\n",
            sched,
            iqpaths_stats::metrics::mean(&meets),
            iqpaths_stats::metrics::stddev(&meets),
            get(worst, "min_meet_fraction"),
            worst.seed,
        ));
    }
    out
}

fn seed_sweep_csv(results: &[CellResult]) -> String {
    let mut csv = String::from("scheduler,seed,min_meet_fraction,max_jitter_ms\n");
    for r in results {
        csv.push_str(&format!(
            "{},{},{:.4},{:.3}\n",
            r.label,
            r.seed,
            get(r, "min_meet_fraction"),
            get(r, "max_jitter_ms"),
        ));
    }
    csv
}

fn blocked_per_path(r: &CellResult) -> String {
    let mut parts = Vec::new();
    for j in 0..16 {
        match r.get(&format!("path{j}.blocked")) {
            Some(v) => parts.push(format!("{}", v as u64)),
            None => break,
        }
    }
    parts.join("/")
}

/// The Lemma 1/2 conformance table (fault_sweep and smoke share it).
fn conformance_table(results: &[CellResult]) -> String {
    let mut out = String::from(
        "| seed | scenario | mode | p̂ (lemma1) | ε₁ | misses/win (lemma2) | ε₂ | windows | blocked/path | verdict |\n\
         |---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in results {
        let (mode, scenario) = r.label.split_once('/').unwrap_or((r.label.as_str(), ""));
        out.push_str(&format!(
            "| {} | {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} | {} |\n",
            r.seed,
            scenario,
            mode,
            get(r, "lemma1.observed"),
            get(r, "lemma1.epsilon"),
            get(r, "lemma2.observed"),
            get(r, "lemma2.epsilon"),
            get(r, "lemma1.windows") as u64,
            blocked_per_path(r),
            if r.all_pass() { "pass" } else { "**FAIL**" },
        ));
    }
    out
}

fn fault_sweep_artifact(results: &[CellResult]) -> String {
    let mut out = String::from("# fault_sweep — engine-generated\n\n## Lemma conformance\n\n");
    out.push_str(&conformance_table(results));
    out.push_str(
        "\n## Run counters\n\n| scenario | mode | upcalls | events |\n|---|---|---|---|\n",
    );
    for r in results {
        let (mode, scenario) = r.label.split_once('/').unwrap_or((r.label.as_str(), ""));
        out.push_str(&format!(
            "| {} | {} | {} | {} |\n",
            scenario,
            mode,
            get(r, "upcalls") as u64,
            get(r, "events") as u64,
        ));
    }
    out
}

fn ablations_table(results: &[CellResult]) -> String {
    let mut out = String::from(
        "| study | setting | min meet | min ratio95 | jitter (ms) |\n|---|---|---|---|---|\n",
    );
    for r in results {
        if r.group == "abl-buffer" {
            continue;
        }
        let jitter = match r.get("max_jitter_ms") {
            Some(j) => format!("{j:.2}"),
            None => "—".to_string(),
        };
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:.3} | {} |\n",
            r.group,
            r.label,
            get(r, "min_meet_fraction"),
            get(r, "min_ratio95"),
            jitter,
        ));
    }
    out
}

fn buffer_table(results: &[CellResult]) -> String {
    let mut out = String::from(
        "| scheduler | startup Atom (ms) | startup Bond1 (ms) | buffer Atom (kB) | buffer Bond1 (kB) |\n\
         |---|---|---|---|---|\n",
    );
    for r in results.iter().filter(|r| r.group == "abl-buffer") {
        out.push_str(&format!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
            r.label,
            get(r, "startup_atom_s") * 1e3,
            get(r, "startup_bond1_s") * 1e3,
            get(r, "buffer_atom_bytes") / 1e3,
            get(r, "buffer_bond1_bytes") / 1e3,
        ));
    }
    out
}

fn ablations_csv(results: &[CellResult]) -> String {
    let mut csv = String::from("ablation,setting,min_meet_fraction,min_ratio95,max_jitter_ms\n");
    for r in results {
        if r.group == "abl-buffer" {
            csv.push_str(&format!(
                "buffer,{},{:.4},{:.4},{:.3}\n",
                r.label,
                get(r, "startup_atom_s"),
                get(r, "startup_bond1_s"),
                get(r, "buffer_bond1_bytes"),
            ));
        } else {
            csv.push_str(&format!(
                "{},{},{:.4},{:.4},{:.3}\n",
                r.group.trim_start_matches("abl-"),
                r.label,
                get(r, "min_meet_fraction"),
                get(r, "min_ratio95"),
                r.get("max_jitter_ms").unwrap_or(0.0),
            ));
        }
    }
    csv
}

/// The `sched_throughput` ladder's checked table: deterministic
/// evidence only. The wall-clock numbers (pps, speedup) deliberately
/// stay out of this block — they vary run to run, and a checked block
/// must be a pure function of the cell specs. They go to the JSON
/// artifact ([`sched_throughput_json`]) instead.
fn sched_throughput_table(results: &[CellResult]) -> String {
    let mut out = String::from(
        "| streams | paths | workers | decisions | windows | offered | dropped | fast ≡ legacy |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    for r in results {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} |\n",
            get(r, "streams") as u64,
            get(r, "paths") as u64,
            get(r, "workers") as u64,
            get(r, "decisions") as u64,
            get(r, "windows") as u64,
            get(r, "offered") as u64,
            get(r, "dropped") as u64,
            if r.all_pass() { "pass" } else { "**FAIL**" },
        ));
    }
    out
}

/// The full ladder — wall-clock throughput included — as the
/// `BENCH_sched_throughput.json` artifact CI uploads and the committed
/// baseline is distilled from.
fn sched_throughput_json(results: &[CellResult]) -> String {
    let cells: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("label".into(), Json::Str(r.label.clone())),
                ("streams".into(), Json::Num(get(r, "streams"))),
                ("paths".into(), Json::Num(get(r, "paths"))),
                ("workers".into(), Json::Num(get(r, "workers"))),
                ("decisions".into(), Json::Num(get(r, "decisions"))),
                ("windows".into(), Json::Num(get(r, "windows"))),
                ("offered".into(), Json::Num(get(r, "offered"))),
                ("dropped".into(), Json::Num(get(r, "dropped"))),
                ("pps_fast".into(), Json::Num(get(r, "pps_fast").round())),
                ("pps_legacy".into(), Json::Num(get(r, "pps_legacy").round())),
                (
                    "speedup".into(),
                    Json::Num((get(r, "speedup") * 100.0).round() / 100.0),
                ),
                ("equivalent".into(), Json::Bool(r.all_pass())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("sweep".into(), Json::Str("sched_throughput".into())),
        ("cells".into(), Json::Arr(cells)),
    ])
    .to_text()
}

/// The graph-scale scalability sweep's checked table. Every column is a
/// deterministic function of the cell spec — including the delivered
/// packets and the per-*virtual*-second rate — so the block is safe to
/// gate with `report --check`. Wall-clock rates live in
/// [`scalability_json`] only.
fn scalability_table(results: &[CellResult]) -> String {
    let mut out = String::from(
        "| cell | nodes | tenants | k | shards | edges | routes | graph | packets | virtual pps | p̂ min | E[Z] max | tenants pass |\n\
         |---|---|---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in results {
        let hash = ((get(r, "graph_hi") as u64) << 32) | get(r, "graph_lo") as u64;
        let tenants = get(r, "tenants") as u64;
        let pass = get(r, "tenants_pass") as u64;
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {:#018x} | {} | {:.1} | {:.4} | {:.3} | {} |\n",
            r.label,
            get(r, "nodes") as u64,
            tenants,
            get(r, "k") as u64,
            get(r, "shards") as u64,
            get(r, "edges") as u64,
            get(r, "routes") as u64,
            hash,
            get(r, "packets") as u64,
            get(r, "vpps"),
            get(r, "lemma1.worst_obs"),
            get(r, "lemma2.worst_obs"),
            if r.all_pass() {
                format!("{pass}/{tenants}")
            } else {
                format!("**{pass}/{tenants} FAIL**")
            },
        ));
    }
    out
}

/// The scalability sweep — wall-clock throughput included — as the
/// `BENCH_scalability.json` artifact CI uploads.
fn scalability_json(results: &[CellResult]) -> String {
    let cells: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("label".into(), Json::Str(r.label.clone())),
                ("nodes".into(), Json::Num(get(r, "nodes"))),
                ("tenants".into(), Json::Num(get(r, "tenants"))),
                ("k".into(), Json::Num(get(r, "k"))),
                ("shards".into(), Json::Num(get(r, "shards"))),
                ("edges".into(), Json::Num(get(r, "edges"))),
                ("routes".into(), Json::Num(get(r, "routes"))),
                ("packets".into(), Json::Num(get(r, "packets"))),
                ("bytes".into(), Json::Num(get(r, "bytes"))),
                (
                    "vpps".into(),
                    Json::Num((get(r, "vpps") * 1000.0).round() / 1000.0),
                ),
                ("wall_secs".into(), Json::Num(get(r, "wall_secs"))),
                ("pps_wall".into(), Json::Num(get(r, "pps_wall").round())),
                ("tenants_pass".into(), Json::Num(get(r, "tenants_pass"))),
                ("all_pass".into(), Json::Bool(r.all_pass())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("sweep".into(), Json::Str("scalability".into())),
        ("cells".into(), Json::Arr(cells)),
    ])
    .to_text()
}

/// Probes actually spent by the `periodic/100` baseline of each
/// scenario group — the denominator of the table's "spend" column.
fn probe_budget_baselines(results: &[CellResult]) -> BTreeMap<&str, f64> {
    results
        .iter()
        .filter(|r| r.label == "periodic/100")
        .map(|r| (r.group.as_str(), get(r, "probes_total")))
        .collect()
}

/// The probe-budget ablation's checked table. Probe counts are a
/// deterministic function of the planner, the budget and the fault
/// script (lost probes still spend budget), so the whole block —
/// spend column included — is safe to gate with `report --check`.
fn probe_budget_table(results: &[CellResult]) -> String {
    let baselines = probe_budget_baselines(results);
    let mut out = String::from(
        "| scenario | planner | budget | probes | spend | p̂ (lemma1) | ε₁ | misses/win (lemma2) | ε₂ | windows | verdict |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in results {
        let (planner, budget) = r.label.split_once('/').unwrap_or((r.label.as_str(), ""));
        let probes = get(r, "probes_total");
        let spend = baselines
            .get(r.group.as_str())
            .filter(|&&b| b > 0.0)
            .map_or("—".to_string(), |b| format!("{:.0}%", 100.0 * probes / b));
        out.push_str(&format!(
            "| {} | {} | {}% | {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {} |\n",
            r.group,
            planner,
            budget,
            probes as u64,
            spend,
            get(r, "lemma1.observed"),
            get(r, "lemma1.epsilon"),
            get(r, "lemma2.observed"),
            get(r, "lemma2.epsilon"),
            get(r, "lemma1.windows") as u64,
            if r.all_pass() { "pass" } else { "**FAIL**" },
        ));
    }
    out
}

/// The probe-budget sweep as the `BENCH_probe_budget.json` artifact.
/// Unlike the wall-clock benches, every field here is deterministic —
/// the artifact exists so budget-vs-conformance curves can be plotted
/// without re-running the sweep.
fn probe_budget_json(results: &[CellResult]) -> String {
    let baselines = probe_budget_baselines(results);
    let cells: Vec<Json> = results
        .iter()
        .map(|r| {
            let probes = get(r, "probes_total");
            let spend = baselines
                .get(r.group.as_str())
                .filter(|&&b| b > 0.0)
                .map_or(f64::NAN, |b| (1000.0 * probes / b).round() / 1000.0);
            Json::Obj(vec![
                ("scenario".into(), Json::Str(r.group.clone())),
                ("label".into(), Json::Str(r.label.clone())),
                ("budget_pct".into(), Json::Num(get(r, "budget_pct"))),
                ("probes_total".into(), Json::Num(probes)),
                ("spend_frac".into(), Json::Num(spend)),
                (
                    "lemma1_observed".into(),
                    Json::Num(get(r, "lemma1.observed")),
                ),
                ("lemma1_epsilon".into(), Json::Num(get(r, "lemma1.epsilon"))),
                (
                    "lemma2_observed".into(),
                    Json::Num(get(r, "lemma2.observed")),
                ),
                ("lemma2_epsilon".into(), Json::Num(get(r, "lemma2.epsilon"))),
                ("windows".into(), Json::Num(get(r, "lemma1.windows"))),
                ("all_pass".into(), Json::Bool(r.all_pass())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("sweep".into(), Json::Str("probe_budget".into())),
        ("cells".into(), Json::Arr(cells)),
    ])
    .to_text()
}

/// The Diversity-vs-PGOS mapping matrix's checked table. Every column
/// is deterministic in virtual time, so the whole block is safe to
/// gate with `report --check`. The classic mapping's rows under the
/// `uncorrelated` rotation are *expected* to fail Lemma 1 — silent
/// loss is invisible to capacity monitoring and uncoded placement
/// cannot dodge it — which is the sweep's headline, so those rows
/// render their honest `**FAIL**` verdict rather than being gated
/// away (same policy as the starved probe budgets).
fn diversity_table(results: &[CellResult]) -> String {
    let mut out = String::from(
        "| scenario | mapping | p̂ (lemma1) | ε₁ | misses/win (lemma2) | ε₂ | windows | on-time (prob) | on-time (vbound) | recovered | verdict |\n\
         |---|---|---|---|---|---|---|---|---|---|---|\n",
    );
    for r in results {
        // Coding evidence only exists for the diversity mapping; the
        // classic rows render an em-dash.
        let recovered = r.get("prob.recovered").map_or("—".to_string(), |p| {
            format!("{}", (p + get(r, "vbound.recovered")) as u64)
        });
        out.push_str(&format!(
            "| {} | {} | {:.3} | {:.3} | {:.3} | {:.3} | {} | {:.3} | {:.3} | {} | {} |\n",
            r.group,
            r.label,
            get(r, "lemma1.observed"),
            get(r, "lemma1.epsilon"),
            get(r, "lemma2.observed"),
            get(r, "lemma2.epsilon"),
            get(r, "lemma1.windows") as u64,
            get(r, "prob.before_deadline"),
            get(r, "vbound.before_deadline"),
            recovered,
            if r.all_pass() { "pass" } else { "**FAIL**" },
        ));
    }
    out
}

/// The diversity sweep as the `BENCH_diversity.json` artifact. Every
/// field is deterministic — the artifact exists so the mapping-vs-
/// scenario comparison can be plotted without re-running the sweep.
fn diversity_json(results: &[CellResult]) -> String {
    let cells: Vec<Json> = results
        .iter()
        .map(|r| {
            Json::Obj(vec![
                ("scenario".into(), Json::Str(r.group.clone())),
                ("mapping".into(), Json::Str(r.label.clone())),
                (
                    "lemma1_observed".into(),
                    Json::Num(get(r, "lemma1.observed")),
                ),
                ("lemma1_epsilon".into(), Json::Num(get(r, "lemma1.epsilon"))),
                (
                    "lemma2_observed".into(),
                    Json::Num(get(r, "lemma2.observed")),
                ),
                ("lemma2_epsilon".into(), Json::Num(get(r, "lemma2.epsilon"))),
                ("windows".into(), Json::Num(get(r, "lemma1.windows"))),
                (
                    "prob_before_deadline".into(),
                    Json::Num(get(r, "prob.before_deadline")),
                ),
                (
                    "vbound_before_deadline".into(),
                    Json::Num(get(r, "vbound.before_deadline")),
                ),
                ("coded_streams".into(), Json::Num(get(r, "coded_streams"))),
                (
                    "recovered".into(),
                    Json::Num(
                        r.get("prob.recovered").unwrap_or(0.0)
                            + r.get("vbound.recovered").unwrap_or(0.0),
                    ),
                ),
                ("all_pass".into(), Json::Bool(r.all_pass())),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("sweep".into(), Json::Str("diversity".into())),
        ("cells".into(), Json::Arr(cells)),
    ])
    .to_text()
}

/// The CI regression gate for the `sched_throughput` ladder.
///
/// `baseline_text` is the committed
/// `crates/harness/baselines/sched_throughput.json`:
/// `{"gate": "<cell label>", "speedup": <x>}`. The gate fails when the
/// fast/legacy decision sequences diverge on *any* cell, or when the
/// measured speedup at the gate cell falls below 0.9 × the committed
/// baseline. The 10% allowance absorbs machine noise; the baseline is
/// deliberately conservative (well under locally measured speedups) so
/// only a genuine fast-path regression trips it.
pub fn sched_throughput_gate(results: &[CellResult], baseline_text: &str) -> Vec<String> {
    let mut problems = Vec::new();
    for r in results {
        if !r.all_pass() {
            problems.push(format!(
                "sched_throughput `{}`: fast and legacy decision sequences diverged",
                r.label
            ));
        }
    }
    let doc = match Json::parse(baseline_text) {
        Ok(doc) => doc,
        Err(e) => {
            problems.push(format!("sched_throughput baseline unreadable: {e}"));
            return problems;
        }
    };
    let (Some(gate_label), Some(base)) = (
        doc.get("gate").and_then(Json::as_str),
        doc.get("speedup").and_then(Json::as_f64),
    ) else {
        problems
            .push("sched_throughput baseline: need `gate` (string) and `speedup` (number)".into());
        return problems;
    };
    let Some(r) = results.iter().find(|r| r.label == gate_label) else {
        problems.push(format!(
            "sched_throughput baseline gates `{gate_label}` but the sweep produced no such cell"
        ));
        return problems;
    };
    let measured = r.get("speedup").unwrap_or(0.0);
    let floor = 0.9 * base;
    if measured < floor {
        problems.push(format!(
            "sched_throughput gate `{gate_label}`: measured speedup {measured:.2}x \
             is below 0.9x the committed baseline {base:.2}x (floor {floor:.2}x)"
        ));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(name: &str, body: &str) -> Block {
        Block {
            name: name.into(),
            body: body.into(),
        }
    }

    const DOC: &str = "# Title\n\nprose before\n\n\
        <!-- BEGIN GENERATED: t1 -->\nold table\n<!-- END GENERATED: t1 -->\n\n\
        prose after\n";

    #[test]
    fn patch_replaces_only_the_region() {
        let (patched, missing) = patch_blocks(DOC, &[block("t1", "| a |\n| 1 |\n")]);
        assert!(missing.is_empty());
        assert!(patched.contains("prose before"));
        assert!(patched.contains("prose after"));
        assert!(patched.contains("| a |\n| 1 |"));
        assert!(!patched.contains("old table"));
        // Patching is idempotent.
        let (again, _) = patch_blocks(&patched, &[block("t1", "| a |\n| 1 |\n")]);
        assert_eq!(again, patched);
    }

    #[test]
    fn check_flags_drift_and_missing_markers() {
        assert!(check_blocks(DOC, &[block("t1", "old table")]).is_empty());
        let drift = check_blocks(DOC, &[block("t1", "new table")]);
        assert_eq!(drift.len(), 1);
        assert!(drift[0].contains("drifts"));
        let missing = check_blocks(DOC, &[block("nope", "x")]);
        assert_eq!(missing.len(), 1);
        assert!(missing[0].contains("not found"));
    }

    #[test]
    fn patched_doc_passes_check() {
        let b = [block("t1", "| fresh |\n")];
        let (patched, _) = patch_blocks(DOC, &b);
        assert!(check_blocks(&patched, &b).is_empty());
    }

    fn sched_result(label: &str, speedup: f64, equivalent: bool) -> CellResult {
        CellResult {
            id: format!("sched_throughput//{label}"),
            sweep: "sched_throughput".into(),
            group: String::new(),
            label: label.into(),
            seed: 42,
            cell_seed: 7,
            metrics: vec![
                ("streams".into(), 1000.0),
                ("paths".into(), 8.0),
                ("workers".into(), 1.0),
                ("decisions".into(), 5000.0),
                ("windows".into(), 3.0),
                ("offered".into(), 6000.0),
                ("dropped".into(), 0.0),
                ("pps_fast".into(), 1.0e6),
                ("pps_legacy".into(), 2.0e5),
                ("speedup".into(), speedup),
            ],
            verdicts: vec![("equivalent.pass".into(), equivalent)],
        }
    }

    const BASELINE: &str = r#"{"gate": "1000x8x1", "speedup": 5.0}"#;

    #[test]
    fn sched_gate_passes_at_and_above_the_floor() {
        // Floor is 0.9 x baseline = 4.5x.
        for speedup in [4.5, 5.0, 11.0] {
            let results = [sched_result("1000x8x1", speedup, true)];
            assert_eq!(
                sched_throughput_gate(&results, BASELINE),
                Vec::<String>::new()
            );
        }
    }

    #[test]
    fn sched_gate_fails_below_the_floor_and_on_divergence() {
        let slow = [sched_result("1000x8x1", 4.4, true)];
        let problems = sched_throughput_gate(&slow, BASELINE);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("below 0.9x"), "{problems:?}");

        let diverged = [sched_result("1000x8x1", 11.0, false)];
        let problems = sched_throughput_gate(&diverged, BASELINE);
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("diverged"), "{problems:?}");

        let missing = [sched_result("10x2x1", 11.0, true)];
        let problems = sched_throughput_gate(&missing, BASELINE);
        assert!(problems[0].contains("no such cell"), "{problems:?}");

        assert!(!sched_throughput_gate(&slow, "not json").is_empty());
    }

    fn scal_result(pass: bool) -> CellResult {
        CellResult {
            id: "scalability//waxman/64n/8t/k2".into(),
            sweep: "scalability".into(),
            group: String::new(),
            label: "waxman/64n/8t/k2".into(),
            seed: 42,
            cell_seed: 7,
            metrics: vec![
                ("nodes".into(), 64.0),
                ("tenants".into(), 8.0),
                ("k".into(), 2.0),
                ("shards".into(), 1.0),
                ("edges".into(), 300.0),
                ("routes".into(), 16.0),
                ("graph_hi".into(), 0xdead_beef_u64 as f64),
                ("graph_lo".into(), 0x1234_5678_u64 as f64),
                ("packets".into(), 123456.0),
                ("bytes".into(), 1.5e8),
                ("vpps".into(), 5144.0),
                ("lemma1.worst_obs".into(), 0.9712),
                ("lemma2.worst_obs".into(), 3.125),
                ("tenants_pass".into(), if pass { 8.0 } else { 7.0 }),
                ("wall_secs".into(), 2.5),
                ("pps_wall".into(), 49382.4),
            ],
            verdicts: vec![("conformance.pass".into(), pass)],
        }
    }

    #[test]
    fn scalability_table_is_deterministic_and_json_carries_wall_clock() {
        let table = scalability_table(&[scal_result(true)]);
        assert!(table.contains("| waxman/64n/8t/k2 | 64 | 8 | 2 | 1 | 300 | 16 |"));
        assert!(table.contains("0xdeadbeef12345678"));
        assert!(table.contains("| 8/8 |"));
        // Wall-clock numbers never reach the checked block.
        assert!(!table.contains("2.5") && !table.contains("49382"));
        let failing = scalability_table(&[scal_result(false)]);
        assert!(failing.contains("**7/8 FAIL**"));

        let json = scalability_json(&[scal_result(true)]);
        assert!(json.contains("\"pps_wall\"") && json.contains("\"wall_secs\""));
        let doc = Json::parse(&json).unwrap();
        assert_eq!(doc.get("sweep").and_then(Json::as_str), Some("scalability"));
    }

    fn pb_result(label: &str, probes: f64, pass: bool) -> CellResult {
        CellResult {
            id: format!("probe_budget/flap/{label}"),
            sweep: "probe_budget".into(),
            group: "flap".into(),
            label: label.into(),
            seed: 42,
            cell_seed: 7,
            metrics: vec![
                ("lemma1.observed".into(), 0.987),
                ("lemma1.target".into(), 0.9),
                ("lemma1.epsilon".into(), 0.11),
                ("lemma1.windows".into(), 95.0),
                ("lemma2.observed".into(), 1.2),
                ("lemma2.target".into(), 30.0),
                ("lemma2.epsilon".into(), 8.0),
                ("lemma2.windows".into(), 95.0),
                (
                    "budget_pct".into(),
                    label.split('/').nth(1).unwrap().parse().unwrap(),
                ),
                ("probes_total".into(), probes),
            ],
            verdicts: vec![
                ("lemma1.pass".into(), pass),
                ("lemma2.pass".into(), pass),
                ("conformance.pass".into(), pass),
            ],
        }
    }

    #[test]
    fn probe_budget_table_reports_spend_against_the_periodic_baseline() {
        let results = [
            pb_result("periodic/100", 360.0, true),
            pb_result("active/25", 90.0, true),
            pb_result("active/5", 18.0, false),
        ];
        let table = probe_budget_table(&results);
        assert!(table.contains("| flap | periodic | 100% | 360 | 100% |"));
        assert!(table.contains("| flap | active | 25% | 90 | 25% |"));
        assert!(table.contains("**FAIL**"));
        let json = probe_budget_json(&results);
        let doc = Json::parse(&json).unwrap();
        assert_eq!(
            doc.get("sweep").and_then(Json::as_str),
            Some("probe_budget")
        );
        assert!(json.contains("\"spend_frac\":0.25"), "{json}");
    }

    fn div_result(scenario: &str, mapping: &str, pass: bool) -> CellResult {
        let mut metrics = vec![
            ("lemma1.observed".into(), if pass { 0.984 } else { 0.741 }),
            ("lemma1.epsilon".into(), 0.11),
            ("lemma2.observed".into(), 1.5),
            ("lemma2.epsilon".into(), 8.0),
            ("lemma1.windows".into(), 95.0),
            (
                "prob.before_deadline".into(),
                if pass { 0.993 } else { 0.687 },
            ),
            (
                "vbound.before_deadline".into(),
                if pass { 0.991 } else { 0.702 },
            ),
            (
                "coded_streams".into(),
                if mapping == "diversity" { 2.0 } else { 0.0 },
            ),
        ];
        if mapping == "diversity" {
            metrics.push(("prob.recovered".into(), 1200.0));
            metrics.push(("vbound.recovered".into(), 800.0));
        }
        CellResult {
            id: format!("diversity/{scenario}/{mapping}"),
            sweep: "diversity".into(),
            group: scenario.into(),
            label: mapping.into(),
            seed: 42,
            cell_seed: 7,
            metrics,
            verdicts: vec![
                ("lemma1.pass".into(), pass),
                ("lemma2.pass".into(), pass),
                ("conformance.pass".into(), pass),
            ],
        }
    }

    #[test]
    fn diversity_table_pairs_mappings_and_keeps_honest_failures() {
        let results = [
            div_result("uncorrelated", "pgos", false),
            div_result("uncorrelated", "diversity", true),
        ];
        let table = diversity_table(&results);
        // The classic mapping's expected lemma failure stays visible…
        assert!(table.contains("| uncorrelated | pgos |"));
        assert!(table.contains("**FAIL**"));
        // …the coded twin reports its recovery evidence and passes.
        assert!(table.contains("| uncorrelated | diversity |"));
        assert!(table.contains("| 2000 | pass |"));
        // Uncoded rows render no recovery counter at all.
        assert!(table.contains("| — | **FAIL** |"));

        let json = diversity_json(&results);
        let doc = Json::parse(&json).unwrap();
        assert_eq!(doc.get("sweep").and_then(Json::as_str), Some("diversity"));
        assert!(json.contains("\"recovered\":2000"), "{json}");
        assert!(json.contains("\"coded_streams\":0"), "{json}");
    }

    #[test]
    fn sched_table_is_deterministic_and_json_carries_wall_clock() {
        let results = [sched_result("1000x8x1", 7.3, true)];
        let table = sched_throughput_table(&results);
        assert!(table.contains("| 1000 | 8 | 1 | 5000 | 3 | 6000 | 0 | pass |"));
        // No wall-clock number leaks into the checked block.
        assert!(!table.contains("7.3") && !table.contains("pps"));
        let json = sched_throughput_json(&results);
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"pps_fast\""));
        let doc = Json::parse(&json).unwrap();
        assert_eq!(
            doc.get("sweep").and_then(Json::as_str),
            Some("sched_throughput")
        );
    }
}
