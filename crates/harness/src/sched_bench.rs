//! The `sched_throughput` cell runner: drives the refactored PGOS hot
//! path ([`iqpaths_core::scheduler::Pgos`]) and the frozen pre-refactor
//! reference ([`crate::sched_ref::RefPgos`]) through one identical
//! synthetic workload and reports both deterministic evidence and
//! wall-clock throughput.
//!
//! **Deterministic outputs** (safe for the checked `EXPERIMENTS.md`
//! block): decision count, window count, offered/dropped packet
//! accounting, and the fast≡legacy equivalence verdict — an FNV-1a
//! hash over every decision's `(path, stream, seq, deadline)` tuple,
//! compared between the two implementations. These are pure functions
//! of the cell seed.
//!
//! **Wall-clock outputs** (JSON artifact only, never the checked
//! block): packets/sec of each side and their ratio. Because both
//! sides run the same workload in the same process on the same core,
//! the *ratio* is a machine-portable measure of the zero-alloc
//! refactor even though the absolute rates are not — which is what the
//! CI regression gate ([`crate::report::sched_throughput_gate`])
//! compares against its committed baseline.
//!
//! The workload: ¼ of streams hold probabilistic guarantees sized to 8
//! scheduled packets per 1 s window; the rest are best-effort with a
//! seeded 1–4 packet burst per window. Paths advertise stationary CDFs
//! with ~4× admission headroom, so the resource map settles after one
//! remap and the measured region is the steady-state decision loop —
//! rule 1 cursor hits, rule 2 other-path promotion (the sub-stepped
//! clock lets behind-schedule flip mid-window), and rule 3 best-effort
//! fallback.

use std::time::Instant;

use iqpaths_core::queues::StreamQueues;
use iqpaths_core::scheduler::{Pgos, PgosConfig};
use iqpaths_core::stream::StreamSpec;
use iqpaths_core::traits::{MultipathScheduler, PathSnapshot};
use iqpaths_simnet::fault::splitmix64;
use iqpaths_stats::{CdfSummary, EmpiricalCdf};

use crate::cell::{CellResult, CellSpec};
use crate::sched_ref::{RefPgos, RefQueues};

/// Packet size used throughout the ladder (bytes).
const PKT_BYTES: u32 = 1250;
/// Scheduling window (1 s, the PGOS default `t_w`).
const WINDOW_NS: u64 = 1_000_000_000;
/// Decision instants per window: the drive clock advances in quarters
/// so the behind-schedule predicate can flip mid-window (exercising
/// rule 2 promotion on both sides).
const SUB_STEPS: u64 = 4;
/// Per-stream queue capacity.
const QUEUE_CAP: usize = 64;
/// Scheduled packets per window for each guaranteed stream.
const GUAR_PKTS_PER_WINDOW: u64 = 8;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Total decision budget for one cell: scaled down with the workload
/// size so the pre-refactor O(streams × paths) reference keeps every
/// cell affordable, floored so small cells still measure something.
fn decision_cap(streams: u32, paths: u32) -> u64 {
    (8_000_000 / (u64::from(streams) * u64::from(paths))).clamp(2_000, 100_000)
}

/// One worker's share of the cell: a dense local stream table plus the
/// original global indices (the burst generator keys on globals so the
/// offered workload is partition-invariant).
struct WorkerPlan {
    specs: Vec<StreamSpec>,
    globals: Vec<usize>,
    cdfs: Vec<CdfSummary>,
    cap: u64,
    seed: u64,
}

/// What one drive of one implementation produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DriveStats {
    decisions: u64,
    windows: u64,
    offered: u64,
    dropped: u64,
    hash: u64,
}

fn guaranteed(global: usize) -> bool {
    global.is_multiple_of(4)
}

/// Arrival burst for `global` in window `w`: guaranteed streams offer
/// exactly their scheduled budget; best-effort streams offer a seeded
/// 1–4 packets.
fn burst(seed: u64, window: u64, global: usize) -> u64 {
    if guaranteed(global) {
        GUAR_PKTS_PER_WINDOW
    } else {
        1 + splitmix64(seed ^ (window << 24) ^ global as u64) % 4
    }
}

fn build_plans(streams: u32, paths: u32, workers: u32, seed: u64) -> Vec<WorkerPlan> {
    let (streams, workers) = (streams as usize, workers.max(1) as usize);
    let total_cap = decision_cap(streams as u32, paths);
    let per_worker_cap = (total_cap / workers as u64).max(1_000);
    (0..workers)
        .map(|w| {
            let globals: Vec<usize> = (0..streams).filter(|g| g % workers == w).collect();
            let specs: Vec<StreamSpec> = globals
                .iter()
                .enumerate()
                .map(|(local, &g)| {
                    if guaranteed(g) {
                        let rate = GUAR_PKTS_PER_WINDOW as f64 * f64::from(PKT_BYTES) * 8.0;
                        StreamSpec::probabilistic(local, format!("s{g}"), rate, 0.9, PKT_BYTES)
                    } else {
                        StreamSpec::best_effort(local, format!("s{g}"), 2.0e6, PKT_BYTES)
                    }
                })
                .collect();
            let total_guar: f64 = globals.iter().filter(|&&g| guaranteed(g)).count() as f64
                * GUAR_PKTS_PER_WINDOW as f64
                * f64::from(PKT_BYTES)
                * 8.0;
            // Stationary per-path CDFs with ~4x admission headroom:
            // the map settles after the first window and the measured
            // region is the steady-state decision loop, not remaps.
            let cdfs: Vec<CdfSummary> = (0..paths as usize)
                .map(|j| {
                    let jitter = 0.95 + (splitmix64(seed ^ (j as u64 + 17)) % 1000) as f64 / 1.0e4;
                    let cap = (4.0 * total_guar / f64::from(paths) + 4.0e6) * jitter;
                    CdfSummary::exact(EmpiricalCdf::from_clean_samples(
                        (0..16)
                            .map(|k| cap * (0.95 + 0.1 * k as f64 / 15.0))
                            .collect(),
                    ))
                })
                .collect();
            WorkerPlan {
                specs,
                globals,
                cdfs,
                cap: per_worker_cap,
                seed,
            }
        })
        .collect()
}

/// Drives the refactored PGOS (SoA pool queues + batched dispatch).
fn drive_fast(plan: &WorkerPlan, paths: usize) -> DriveStats {
    let n = plan.specs.len();
    if n == 0 {
        return DriveStats {
            decisions: 0,
            windows: 0,
            offered: 0,
            dropped: 0,
            hash: FNV_OFFSET,
        };
    }
    let mut pgos = Pgos::new(
        PgosConfig {
            window_secs: WINDOW_NS as f64 / 1e9,
            ..PgosConfig::default()
        },
        plan.specs.clone(),
        paths,
    );
    let mut queues = StreamQueues::with_pool_capacity(
        n,
        QUEUE_CAP,
        n.saturating_mul(GUAR_PKTS_PER_WINDOW as usize).min(65_536),
    );
    let snapshots: Vec<PathSnapshot> = plan
        .cdfs
        .iter()
        .enumerate()
        .map(|(j, c)| PathSnapshot::from_summary(j, c.clone()))
        .collect();
    let mut out = Vec::with_capacity(256);
    let (mut decisions, mut windows, mut hash) = (0u64, 0u64, FNV_OFFSET);
    'outer: while decisions < plan.cap {
        let w = windows;
        windows += 1;
        let ws = w * WINDOW_NS;
        pgos.on_window_start(ws, WINDOW_NS, &snapshots);
        let mut pushed = 0u64;
        for (local, &g) in plan.globals.iter().enumerate() {
            for _ in 0..burst(plan.seed, w, g) {
                queues.push(local, PKT_BYTES, ws);
                pushed += 1;
            }
        }
        let batch = (pushed / (SUB_STEPS * paths as u64) + 2) as usize;
        for sub in 0..SUB_STEPS {
            let now = ws + sub * (WINDOW_NS / SUB_STEPS) + 1;
            for j in 0..paths {
                out.clear();
                let served = pgos.next_batch(j, now, &mut queues, batch, &mut out);
                for pkt in &out {
                    hash = fold(hash, j as u64);
                    hash = fold(hash, pkt.stream as u64);
                    hash = fold(hash, pkt.seq);
                    hash = fold(hash, pkt.deadline_ns);
                }
                decisions += served as u64;
                if decisions >= plan.cap {
                    break 'outer;
                }
            }
        }
    }
    DriveStats {
        decisions,
        windows,
        offered: (0..n).map(|i| queues.offered(i)).sum(),
        dropped: (0..n).map(|i| queues.dropped(i)).sum(),
        hash,
    }
}

/// Drives the frozen pre-refactor reference through the *same* call
/// sequence (`next_packet` in a loop standing in for `next_batch`,
/// which is its documented expansion).
fn drive_ref(plan: &WorkerPlan, paths: usize) -> DriveStats {
    let n = plan.specs.len();
    if n == 0 {
        return DriveStats {
            decisions: 0,
            windows: 0,
            offered: 0,
            dropped: 0,
            hash: FNV_OFFSET,
        };
    }
    let mut pgos = RefPgos::new(WINDOW_NS as f64 / 1e9, plan.specs.clone(), paths);
    let mut queues = RefQueues::new(n, QUEUE_CAP);
    let (mut decisions, mut windows, mut hash) = (0u64, 0u64, FNV_OFFSET);
    'outer: while decisions < plan.cap {
        let w = windows;
        windows += 1;
        let ws = w * WINDOW_NS;
        pgos.on_window_start(ws, WINDOW_NS, &plan.cdfs);
        let mut pushed = 0u64;
        for (local, &g) in plan.globals.iter().enumerate() {
            for _ in 0..burst(plan.seed, w, g) {
                queues.push(local, PKT_BYTES, ws);
                pushed += 1;
            }
        }
        let batch = pushed / (SUB_STEPS * paths as u64) + 2;
        for sub in 0..SUB_STEPS {
            let now = ws + sub * (WINDOW_NS / SUB_STEPS) + 1;
            for j in 0..paths {
                let mut served = 0u64;
                while served < batch {
                    let Some(pkt) = pgos.next_packet(j, now, &mut queues) else {
                        break;
                    };
                    hash = fold(hash, j as u64);
                    hash = fold(hash, pkt.stream as u64);
                    hash = fold(hash, pkt.seq);
                    hash = fold(hash, pkt.deadline_ns);
                    served += 1;
                }
                decisions += served;
                if decisions >= plan.cap {
                    break 'outer;
                }
            }
        }
    }
    DriveStats {
        decisions,
        windows,
        offered: (0..n).map(|i| queues.offered(i)).sum(),
        dropped: (0..n).map(|i| queues.dropped(i)).sum(),
        hash,
    }
}

/// Runs one pass (all workers) of one implementation. Workers run on
/// their own OS threads — deliberately *not* the engine's rayon pool,
/// so a `--threads 1` engine still measures real shard parallelism.
fn pass<F: Fn(&WorkerPlan) -> DriveStats + Sync>(plans: &[WorkerPlan], f: F) -> Vec<DriveStats> {
    if plans.len() == 1 {
        return vec![f(&plans[0])];
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = plans.iter().map(|p| s.spawn(move || f(p))).collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sched_throughput worker panicked"))
            .collect()
    })
}

/// Executes one `sched_throughput` cell.
pub fn run_sched_throughput_cell(
    spec: &CellSpec,
    streams: u32,
    paths: u32,
    workers: u32,
    res: &mut CellResult,
) {
    let plans = build_plans(streams, paths, workers, spec.cell_seed());
    let p = paths as usize;

    let t0 = Instant::now();
    let fast = pass(&plans, |plan| drive_fast(plan, p));
    let wall_fast = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let legacy = pass(&plans, |plan| drive_ref(plan, p));
    let wall_legacy = t1.elapsed().as_secs_f64();

    let sum =
        |stats: &[DriveStats], f: fn(&DriveStats) -> u64| -> u64 { stats.iter().map(f).sum() };
    let decisions = sum(&fast, |s| s.decisions);
    let equivalent = fast == legacy;

    res.metric("streams", f64::from(streams));
    res.metric("paths", f64::from(paths));
    res.metric("workers", f64::from(workers));
    res.metric("decisions", decisions as f64);
    res.metric("windows", sum(&fast, |s| s.windows) as f64);
    res.metric("offered", sum(&fast, |s| s.offered) as f64);
    res.metric("dropped", sum(&fast, |s| s.dropped) as f64);
    res.verdict("equivalent.pass", equivalent);
    // Wall-clock measurements: JSON artifact only, never the checked
    // EXPERIMENTS.md block (and the sweep is uncacheable because of
    // them — see `SweepSpec::cacheable`).
    let pps_fast = decisions as f64 / wall_fast.max(1e-9);
    let pps_legacy = sum(&legacy, |s| s.decisions) as f64 / wall_legacy.max(1e-9);
    res.metric("pps_fast", pps_fast);
    res.metric("pps_legacy", pps_legacy);
    res.metric("speedup", pps_fast / pps_legacy.max(1e-9));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellKind, CellSpec};

    fn cell(streams: u32, paths: u32, workers: u32) -> CellSpec {
        CellSpec {
            sweep: "sched_throughput".into(),
            group: String::new(),
            label: format!("{streams}x{paths}x{workers}"),
            seed: 42,
            duration: 1.0,
            shards: 1,
            kind: CellKind::SchedThroughput {
                streams,
                paths,
                workers,
            },
        }
    }

    #[test]
    fn fast_and_reference_agree_decision_for_decision() {
        // Small scale so the debug-mode scan cross-check inside Pgos
        // stays fast; the full ladder runs in release via the harness.
        for (s, p, w) in [(8, 2, 1), (12, 3, 2), (10, 2, 4)] {
            let spec = cell(s, p, w);
            let plans = build_plans(s, p, w, spec.cell_seed());
            let fast: Vec<DriveStats> = plans
                .iter()
                .map(|plan| drive_fast(plan, p as usize))
                .collect();
            let legacy: Vec<DriveStats> = plans
                .iter()
                .map(|plan| drive_ref(plan, p as usize))
                .collect();
            assert_eq!(fast, legacy, "divergence at {s}x{p}x{w}");
            assert!(fast.iter().map(|d| d.decisions).sum::<u64>() >= 1_000);
        }
    }

    #[test]
    fn the_cell_runner_reports_equivalence_and_counts() {
        let spec = cell(8, 2, 1);
        let mut res = CellResult::for_spec(&spec);
        run_sched_throughput_cell(&spec, 8, 2, 1, &mut res);
        assert!(res.all_pass(), "equivalence verdict failed: {res:?}");
        assert!(res.get("decisions").unwrap() >= 1_000.0);
        assert!(res.get("speedup").unwrap() > 0.0);
        assert_eq!(res.get("streams"), Some(8.0));
    }

    #[test]
    fn burst_is_deterministic_and_partition_invariant() {
        // The burst generator keys on the *global* stream id, so the
        // same (seed, window, stream) triple offers the same packets
        // no matter how streams are partitioned across workers.
        for g in 0..32 {
            assert_eq!(burst(7, 3, g), burst(7, 3, g));
            if guaranteed(g) {
                assert_eq!(burst(7, 3, g), GUAR_PKTS_PER_WINDOW);
            } else {
                assert!((1..=4).contains(&burst(7, 3, g)));
            }
        }
    }
}
