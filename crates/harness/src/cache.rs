//! On-disk result cache.
//!
//! One JSON file per cell under `target/harness-cache/<sweep>/`. The
//! file name is `<slug>-<key>.json` where `key` hashes everything that
//! determines the result:
//!
//! * the cell's full identity ([`crate::cell::CellSpec::id`] — sweep,
//!   group, label, axis seed, duration, kind + every knob), and
//! * a code-version tag (`git describe --always --dirty`, falling back
//!   to the crate version when git is unavailable),
//!
//! so editing a sweep definition or the engine invalidates exactly the
//! affected cells, and a re-run executes only what changed. Corrupt or
//! unreadable cache files are treated as misses, never errors.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::OnceLock;

use crate::cell::{fnv1a64, CellResult, CellSpec};

/// The code-version tag folded into every cache key (computed once per
/// process).
pub fn version_tag() -> &'static str {
    static TAG: OnceLock<String> = OnceLock::new();
    TAG.get_or_init(|| {
        let git = Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty());
        match git {
            Some(tag) => tag,
            None => format!("v{}", env!("CARGO_PKG_VERSION")),
        }
    })
}

/// The default cache root: `target/harness-cache` next to the other
/// build products (override with `IQP_CACHE_DIR`).
pub fn default_dir() -> PathBuf {
    match std::env::var("IQP_CACHE_DIR") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/harness-cache"),
    }
}

/// A cell-result cache rooted at one directory.
#[derive(Debug, Clone)]
pub struct Cache {
    root: PathBuf,
}

impl Cache {
    /// A cache at the default location.
    pub fn new() -> Self {
        Self::at(default_dir())
    }

    /// A cache rooted at `root`.
    pub fn at(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The cache file for `spec`.
    pub fn path_for(&self, spec: &CellSpec) -> PathBuf {
        let key = fnv1a64(format!("{}\n{}", spec.id(), version_tag()).as_bytes());
        let slug: String = format!("{}-{}-s{}", spec.group, spec.label, spec.seed)
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '.' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        self.root
            .join(&spec.sweep)
            .join(format!("{}-{key:016x}.json", slug.trim_matches('-')))
    }

    /// Fetches a cached result, if a valid one exists for this exact
    /// spec + code version.
    pub fn get(&self, spec: &CellSpec) -> Option<CellResult> {
        let text = std::fs::read_to_string(self.path_for(spec)).ok()?;
        let result = CellResult::from_text(&text).ok()?;
        // Defensive: the key already encodes the id, but a hash
        // collision or hand-edited file must not impersonate a cell.
        (result.id == spec.id()).then_some(result)
    }

    /// Stores a result. Write failures are reported, not fatal — a
    /// read-only cache degrades to "run everything".
    pub fn put(&self, spec: &CellSpec, result: &CellResult) {
        let path = self.path_for(spec);
        if let Err(e) = write_atomic(&path, &result.to_text()) {
            eprintln!("harness: cache write failed for {}: {e}", path.display());
        }
    }
}

impl Default for Cache {
    fn default() -> Self {
        Self::new()
    }
}

fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let dir = path.parent().expect("cache paths have a parent");
    std::fs::create_dir_all(dir)?;
    // Unique temp name per thread so parallel writers never collide.
    let tmp = dir.join(format!(
        ".tmp-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::CellKind;

    fn spec(label: &str) -> CellSpec {
        CellSpec {
            sweep: "test_sweep".into(),
            group: "g".into(),
            label: label.into(),
            seed: 1,
            duration: 50.0,
            shards: 1,
            kind: CellKind::Validation { demand_pct: 85 },
        }
    }

    #[test]
    fn round_trip_hit_and_miss() {
        let dir = std::env::temp_dir().join(format!("iqp-cache-test-{}", std::process::id()));
        let cache = Cache::at(&dir);
        let s = spec("a");
        assert!(cache.get(&s).is_none());
        let mut r = CellResult::for_spec(&s);
        r.metric("x", 1.25);
        cache.put(&s, &r);
        assert_eq!(cache.get(&s), Some(r));
        // A different cell does not hit the same entry.
        assert!(cache.get(&spec("b")).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_files_are_misses() {
        let dir = std::env::temp_dir().join(format!("iqp-cache-corrupt-{}", std::process::id()));
        let cache = Cache::at(&dir);
        let s = spec("c");
        let path = cache.path_for(&s);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, "{not json").unwrap();
        assert!(cache.get(&s).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn version_tag_is_nonempty_and_stable() {
        assert!(!version_tag().is_empty());
        assert_eq!(version_tag(), version_tag());
    }
}
