//! The `harness` CLI: run sweeps, regenerate EXPERIMENTS.md tables,
//! measure the engine's own speedup.
//!
//! ```text
//! harness list
//! harness sweep  [--sweep NAME|all] [--threads N] [--no-cache]
//!                [--seed S] [--duration D] [--shards N] [--verbose]
//! harness report [--sweep NAME|all] [--check] [--seed S] [--duration D]
//! harness speedup [--threads N]
//! ```
//!
//! `sweep` executes cells (parallel, cached) and prints a summary.
//! `report` additionally renders the tables, patches the generated
//! blocks in `EXPERIMENTS.md` and writes `target/experiments/` CSVs;
//! with `--check` it verifies the committed blocks instead of writing
//! (non-zero exit on drift). `speedup` times the fault-sweep matrix
//! serially vs in parallel vs from a warm cache.

use std::path::PathBuf;
use std::process::ExitCode;

use iqpaths_harness::engine::{run_sweep, EngineOpts};
use iqpaths_harness::report::{
    blocks_for, check_blocks, csv_for, patch_blocks, sched_throughput_gate, Block,
};
use iqpaths_harness::sweeps::{all_sweeps, fault_sweep, sweep_by_name, SweepSpec};

const DEFAULT_SEED: u64 = 42;
const DEFAULT_DURATION: f64 = 150.0;

struct Args {
    cmd: String,
    sweep: String,
    threads: Option<usize>,
    use_cache: bool,
    check: bool,
    verbose: bool,
    seed: u64,
    duration: f64,
    shards: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let cmd = argv.next().unwrap_or_else(|| "help".into());
    let mut args = Args {
        cmd,
        sweep: "all".into(),
        threads: None,
        use_cache: true,
        check: false,
        verbose: false,
        seed: DEFAULT_SEED,
        duration: DEFAULT_DURATION,
        shards: 1,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--sweep" => args.sweep = value("--sweep")?,
            "--threads" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--duration" => {
                args.duration = value("--duration")?
                    .parse()
                    .map_err(|e| format!("--duration: {e}"))?
            }
            "--shards" => {
                args.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?
            }
            "--no-cache" => args.use_cache = false,
            "--check" => args.check = true,
            "--verbose" => args.verbose = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn selected_sweeps(args: &Args) -> Result<Vec<SweepSpec>, String> {
    // `--shards N` reruns the sweep on the sharded data plane; the cell
    // identity (and therefore the cache key) carries the shard count, so
    // serial and sharded results never alias.
    let sweeps = if args.sweep == "all" {
        all_sweeps(args.seed, args.duration)
    } else {
        sweep_by_name(&args.sweep, args.seed, args.duration)
            .map(|s| vec![s])
            .ok_or_else(|| format!("unknown sweep `{}` (see `harness list`)", args.sweep))?
    };
    Ok(sweeps
        .into_iter()
        .map(|s| s.with_shards(args.shards))
        .collect())
}

fn experiments_md_path() -> PathBuf {
    match std::env::var("IQP_EXPERIMENTS_MD") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../EXPERIMENTS.md"),
    }
}

fn out_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiment output dir");
    dir
}

fn sched_baseline_path() -> PathBuf {
    match std::env::var("IQP_SCHED_BASELINE") {
        Ok(p) if !p.is_empty() => PathBuf::from(p),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("baselines/sched_throughput.json"),
    }
}

fn cmd_list() -> ExitCode {
    println!(
        "{:<18} {:>5} {:>8}  description",
        "sweep", "cells", "dur (s)"
    );
    for s in all_sweeps(DEFAULT_SEED, DEFAULT_DURATION) {
        println!(
            "{:<18} {:>5} {:>8}  {}",
            s.name,
            s.expand().len(),
            s.duration,
            s.about
        );
    }
    ExitCode::SUCCESS
}

fn cmd_sweep(args: &Args) -> Result<ExitCode, String> {
    let opts = EngineOpts {
        threads: args.threads,
        use_cache: args.use_cache,
        verbose: args.verbose,
    };
    let mut failures = 0usize;
    for sweep in selected_sweeps(args)? {
        let out = run_sweep(&sweep, &opts);
        let failed = out.results.iter().filter(|r| !r.all_pass()).count();
        failures += failed;
        println!(
            "{:<18} {:>3} cells  ({} run, {} cached)  {:>7.2}s wall{}",
            out.name,
            out.results.len(),
            out.executed,
            out.cached,
            out.wall_secs,
            if failed > 0 {
                format!("  {failed} cell(s) FAILED conformance")
            } else {
                String::new()
            }
        );
    }
    Ok(if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_report(args: &Args) -> Result<ExitCode, String> {
    let opts = EngineOpts {
        threads: args.threads,
        use_cache: args.use_cache,
        verbose: args.verbose,
    };
    let mut blocks: Vec<Block> = Vec::new();
    let mut gate_problems: Vec<String> = Vec::new();
    for sweep in selected_sweeps(args)? {
        let out = run_sweep(&sweep, &opts);
        println!(
            "{:<18} {:>3} cells  ({} run, {} cached)  {:>7.2}s wall",
            out.name,
            out.results.len(),
            out.executed,
            out.cached,
            out.wall_secs
        );
        blocks.extend(blocks_for(sweep.name, &out.results));
        // Artifacts are written in check mode too: CI uploads the
        // wall-clock JSON produced by the very run the gate judged.
        if let Some((name, contents)) = csv_for(sweep.name, &out.results) {
            let path = out_dir().join(&name);
            std::fs::write(&path, contents).map_err(|e| format!("write {name}: {e}"))?;
            println!("  [artifact] {}", path.display());
        }
        if args.check && sweep.name == "sched_throughput" {
            let baseline_path = sched_baseline_path();
            let baseline = std::fs::read_to_string(&baseline_path)
                .map_err(|e| format!("read {}: {e}", baseline_path.display()))?;
            gate_problems.extend(sched_throughput_gate(&out.results, &baseline));
        }
    }

    let md_path = experiments_md_path();
    let doc = std::fs::read_to_string(&md_path)
        .map_err(|e| format!("read {}: {e}", md_path.display()))?;
    if args.check {
        let mut problems = check_blocks(&doc, &blocks);
        problems.extend(gate_problems);
        if problems.is_empty() {
            println!(
                "EXPERIMENTS.md: {} generated block(s) up to date",
                blocks.len()
            );
            Ok(ExitCode::SUCCESS)
        } else {
            for p in &problems {
                eprintln!("CHECK FAILED: {p}");
            }
            Ok(ExitCode::FAILURE)
        }
    } else {
        let (patched, missing) = patch_blocks(&doc, &blocks);
        for name in &missing {
            eprintln!("warning: no `<!-- BEGIN GENERATED: {name} -->` marker in EXPERIMENTS.md");
        }
        std::fs::write(&md_path, patched)
            .map_err(|e| format!("write {}: {e}", md_path.display()))?;
        println!(
            "EXPERIMENTS.md: {} block(s) regenerated",
            blocks.len() - missing.len()
        );
        Ok(ExitCode::SUCCESS)
    }
}

fn cmd_speedup(args: &Args) -> Result<ExitCode, String> {
    // The fault-sweep matrix is the representative workload: 12
    // independent ~100 s-virtual-time cells.
    let sweep = fault_sweep(args.seed, 120.0);
    let serial = run_sweep(
        &sweep,
        &EngineOpts {
            threads: Some(1),
            use_cache: false,
            verbose: false,
        },
    );
    let parallel = run_sweep(
        &sweep,
        &EngineOpts {
            threads: args.threads,
            use_cache: false,
            verbose: false,
        },
    );
    // Warm the cache, then time a fully cached pass.
    let warm = run_sweep(
        &sweep,
        &EngineOpts {
            threads: args.threads,
            use_cache: true,
            verbose: false,
        },
    );
    let cached = run_sweep(
        &sweep,
        &EngineOpts {
            threads: args.threads,
            use_cache: true,
            verbose: false,
        },
    );
    for (r, label) in [&serial, &parallel, &warm, &cached].iter().zip([
        "serial (1 thread, no cache)",
        "parallel (default threads, no cache)",
        "cache warm-up pass",
        "warm cache",
    ]) {
        println!(
            "{label:<38} {:>7.2}s wall  ({} run, {} cached)",
            r.wall_secs, r.executed, r.cached
        );
    }
    println!(
        "available threads: {}  |  parallel speedup {:.2}x  |  warm-cache speedup {:.1}x",
        rayon::current_num_threads(),
        serial.wall_secs / parallel.wall_secs,
        serial.wall_secs / cached.wall_secs,
    );
    // Bit-identity across execution shapes, checked on every speedup run.
    let a: Vec<String> = serial.results.iter().map(|r| r.to_text()).collect();
    let b: Vec<String> = parallel.results.iter().map(|r| r.to_text()).collect();
    let c: Vec<String> = cached.results.iter().map(|r| r.to_text()).collect();
    if a != b || a != c {
        eprintln!("DETERMINISM VIOLATION: serial/parallel/cached results differ");
        return Ok(ExitCode::FAILURE);
    }
    println!("results bit-identical across serial / parallel / cached execution");
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("harness: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.cmd.as_str() {
        "list" => Ok(cmd_list()),
        "sweep" => cmd_sweep(&args),
        "report" => cmd_report(&args),
        "speedup" => cmd_speedup(&args),
        "help" | "--help" | "-h" => {
            println!(
                "usage: harness <list|sweep|report|speedup> \
                 [--sweep NAME|all] [--threads N] [--no-cache] [--check] \
                 [--seed S] [--duration D] [--shards N] [--verbose]"
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}` (try `harness help`)")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("harness: {e}");
            ExitCode::FAILURE
        }
    }
}
