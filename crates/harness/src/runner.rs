//! Cell execution: turns a [`CellSpec`] into a [`CellResult`].
//!
//! Every cell runs with its *derived* seed ([`CellSpec::cell_seed`]),
//! never the raw axis seed, and touches no global state — the whole
//! function is a pure map from spec to result, which is what lets the
//! engine run cells in any order, on any thread, with a byte-identical
//! outcome. Logic is ported 1:1 from the original `iqpaths-bench`
//! binaries (`fault_sweep`, `seed_sweep`, `ablations`, `validation`,
//! `fig04_prediction`); metric names are the stable contract the
//! report layer renders from.

use iqpaths_apps::smartpointer::{
    SmartPointer, SmartPointerConfig, ATOM, ATOM_BW, BOND1, BOND1_BW,
};
use iqpaths_apps::workload::FramedSource;
use iqpaths_core::guarantee::{lemma1_probability, lemma2_expected_misses};
use iqpaths_core::scheduler::{Pgos, PgosConfig};
use iqpaths_core::stream::StreamSpec;
use iqpaths_middleware::knobs::{mapping_mode_by_name, scheduler_by_name};
use iqpaths_middleware::runtime::{run, RuntimeConfig};
use iqpaths_middleware::sharded::run_sharded;
use iqpaths_overlay::node::CdfMode;
use iqpaths_overlay::path::OverlayPath;
use iqpaths_overlay::planner::{PlannerKind, ProbeBudget};
use iqpaths_simnet::fault::FaultSchedule;
use iqpaths_simnet::link::{quantize_cross, Link};
use iqpaths_simnet::time::SimDuration;
use iqpaths_simnet::topology::{emulab_testbed, PATH_A_ROUTE, PATH_B_ROUTE};
use iqpaths_stats::percentile::{evaluate_mean_prediction, evaluate_percentile_prediction};
use iqpaths_stats::predictors::extended_suite;
use iqpaths_stats::{BandwidthCdf, EmpiricalCdf};
use iqpaths_testkit::{
    mode_by_name, run_conformance, run_scalability, ConformanceConfig, FaultScenario, GraphModel,
    ScalabilityConfig,
};
use iqpaths_trace::TraceHandle;
use iqpaths_traces::envelope::{available_bandwidth, EnvelopeConfig};
use iqpaths_traces::RateTrace;

use crate::cell::{CellKind, CellResult, CellSpec};

/// Executes one cell. Panics on a malformed spec (unknown mode,
/// scenario or scheduler name) — specs come from the in-crate sweep
/// definitions, so that is a programming error, not an input error.
pub fn run_cell(spec: &CellSpec) -> CellResult {
    let mut res = CellResult::for_spec(spec);
    match &spec.kind {
        CellKind::Conformance { mode, scenario } => {
            run_conformance_cell(spec, mode, scenario, &mut res)
        }
        CellKind::SmartPointer {
            scheduler,
            knobs,
            bond2_mbps,
            quantize_bytes,
        } => run_smartpointer_cell(
            spec,
            scheduler,
            knobs,
            *bond2_mbps,
            *quantize_bytes,
            &mut res,
        ),
        CellKind::Validation { demand_pct } => run_validation_cell(spec, *demand_pct, &mut res),
        CellKind::Scalability {
            model,
            nodes,
            tenants,
            k,
        } => run_scalability_cell(spec, model, *nodes, *tenants, *k, &mut res),
        CellKind::Prediction { window_ds } => run_prediction_cell(spec, *window_ds, &mut res),
        CellKind::ProbeBudget {
            planner,
            budget_pct,
            scenario,
        } => run_probe_budget_cell(spec, planner, *budget_pct, scenario, &mut res),
        CellKind::Diversity { mapping, scenario } => {
            run_diversity_cell(spec, mapping, scenario, &mut res)
        }
        CellKind::SchedThroughput {
            streams,
            paths,
            workers,
        } => crate::sched_bench::run_sched_throughput_cell(
            spec, *streams, *paths, *workers, &mut res,
        ),
    }
    res
}

fn run_conformance_cell(spec: &CellSpec, mode: &str, scenario: &str, res: &mut CellResult) {
    let mode = mode_by_name(mode).unwrap_or_else(|| panic!("unknown CDF mode `{mode}`"));
    let scenario =
        FaultScenario::by_name(scenario).unwrap_or_else(|| panic!("unknown scenario `{scenario}`"));
    let mut cfg = ConformanceConfig::new(spec.cell_seed(), mode, scenario);
    cfg.duration = spec.duration;
    cfg.shards = spec.shards.max(1);
    let r = run_conformance(cfg);
    for o in &r.outcomes {
        res.metric(&format!("{}.observed", o.kind), o.observed);
        res.metric(&format!("{}.target", o.kind), o.target);
        res.metric(&format!("{}.epsilon", o.kind), o.epsilon);
        res.metric(&format!("{}.windows", o.kind), o.windows as f64);
        res.verdict(&format!("{}.pass", o.kind), o.pass);
    }
    for (j, blocked) in r.report.path_blocked_events.iter().enumerate() {
        res.metric(&format!("path{j}.blocked"), *blocked as f64);
    }
    res.metric("upcalls", r.report.upcalls.len() as f64);
    res.metric("events", r.report.events as f64);
    for (name, value) in r.report.metrics.kv_pairs() {
        res.metric(&name, value);
    }
}

fn run_probe_budget_cell(
    spec: &CellSpec,
    planner: &str,
    budget_pct: u32,
    scenario: &str,
    res: &mut CellResult,
) {
    let planner =
        PlannerKind::by_name(planner).unwrap_or_else(|| panic!("unknown planner `{planner}`"));
    let scenario =
        FaultScenario::by_name(scenario).unwrap_or_else(|| panic!("unknown scenario `{scenario}`"));
    let budget = ProbeBudget::percent(budget_pct);
    let mut cfg = ConformanceConfig::new(spec.cell_seed(), CdfMode::Exact, scenario)
        .with_planner(planner, budget);
    cfg.duration = spec.duration;
    cfg.shards = spec.shards.max(1);
    let r = run_conformance(cfg);
    for o in &r.outcomes {
        res.metric(&format!("{}.observed", o.kind), o.observed);
        res.metric(&format!("{}.target", o.kind), o.target);
        res.metric(&format!("{}.epsilon", o.kind), o.epsilon);
        res.metric(&format!("{}.windows", o.kind), o.windows as f64);
        res.verdict(&format!("{}.pass", o.kind), o.pass);
    }
    res.metric("budget_pct", f64::from(budget_pct));
    for (j, n) in r.probe_counts.iter().enumerate() {
        res.metric(&format!("path{j}.probes"), *n as f64);
    }
    res.metric("probes_total", r.probe_counts.iter().sum::<u64>() as f64);
    res.verdict("conformance.pass", r.all_pass());
}

fn run_diversity_cell(spec: &CellSpec, mapping: &str, scenario: &str, res: &mut CellResult) {
    let mapping =
        mapping_mode_by_name(mapping).unwrap_or_else(|| panic!("unknown mapping mode `{mapping}`"));
    let scenario =
        FaultScenario::by_name(scenario).unwrap_or_else(|| panic!("unknown scenario `{scenario}`"));
    let mut cfg =
        ConformanceConfig::new(spec.cell_seed(), CdfMode::Exact, scenario).with_mapping(mapping);
    cfg.duration = spec.duration;
    cfg.shards = spec.shards.max(1);
    let r = run_conformance(cfg);
    for o in &r.outcomes {
        res.metric(&format!("{}.observed", o.kind), o.observed);
        res.metric(&format!("{}.target", o.kind), o.target);
        res.metric(&format!("{}.epsilon", o.kind), o.epsilon);
        res.metric(&format!("{}.windows", o.kind), o.windows as f64);
        res.verdict(&format!("{}.pass", o.kind), o.pass);
    }
    // The headline ratio plus the coding evidence, per stream. For the
    // classic mapping every stream is uncoded and only the ratio rows
    // appear — a `diversity`-mapped guaranteed stream additionally
    // reports its group shape and recovery counters.
    for (i, s) in r.report.streams.iter().enumerate() {
        res.metric(&format!("{}.before_deadline", s.name), r.before_deadline[i]);
        if let Some(c) = &s.coding {
            res.metric(&format!("{}.coding_n", s.name), c.n as f64);
            res.metric(&format!("{}.coding_k", s.name), c.k as f64);
            res.metric(&format!("{}.parity_sent", s.name), c.parity_sent as f64);
            res.metric(
                &format!("{}.groups_decoded", s.name),
                c.groups_decoded as f64,
            );
            res.metric(&format!("{}.groups_total", s.name), c.groups_total as f64);
            res.metric(&format!("{}.recovered", s.name), c.recovered as f64);
        }
    }
    res.metric(
        "coded_streams",
        r.report
            .streams
            .iter()
            .filter(|s| s.coding.is_some())
            .count() as f64,
    );
    res.verdict("conformance.pass", r.all_pass());
}

fn run_scalability_cell(
    spec: &CellSpec,
    model: &str,
    nodes: u32,
    tenants: u32,
    k: u32,
    res: &mut CellResult,
) {
    let model =
        GraphModel::by_name(model).unwrap_or_else(|| panic!("unknown graph model `{model}`"));
    let mut cfg = ScalabilityConfig::new(
        spec.cell_seed(),
        model,
        nodes as usize,
        tenants as usize,
        k as usize,
    )
    .with_shards(spec.shards.max(1));
    cfg.duration = spec.duration;
    let t0 = std::time::Instant::now();
    let r = run_scalability(cfg);
    let wall = t0.elapsed().as_secs_f64().max(1e-9);

    // Deterministic evidence (feeds the checked EXPERIMENTS.md block).
    res.metric("nodes", r.nodes as f64);
    res.metric("tenants", r.tenants.len() as f64);
    res.metric("k", r.k as f64);
    res.metric("shards", r.shards as f64);
    res.metric("edges", r.edges as f64);
    res.metric("routes", r.total_routes as f64);
    // The 64-bit generator hash split into exact-in-f64 halves.
    res.metric("graph_hi", (r.graph_hash >> 32) as f64);
    res.metric("graph_lo", (r.graph_hash & 0xffff_ffff) as f64);
    res.metric("packets", r.total_packets as f64);
    res.metric("bytes", r.total_bytes as f64);
    res.metric("vpps", r.virtual_pps);
    let pass = r
        .tenants
        .iter()
        .filter(|t| t.outcomes.iter().all(|o| o.pass))
        .count();
    res.metric("tenants_pass", pass as f64);
    let worst = |kind: &str, init: f64, pick: fn(f64, f64) -> f64| {
        r.tenants
            .iter()
            .flat_map(|t| t.outcomes.iter())
            .filter(|o| o.kind == kind)
            .map(|o| o.observed)
            .fold(init, pick)
    };
    res.metric("lemma1.worst_obs", worst("lemma1", 1.0, f64::min));
    res.metric("lemma2.worst_obs", worst("lemma2", 0.0, f64::max));
    res.verdict("conformance.pass", r.all_pass());

    // Wall-clock throughput: BENCH_scalability.json only, never the
    // checked table.
    res.metric("wall_secs", wall);
    res.metric("pps_wall", r.total_packets as f64 / wall);
}

fn run_smartpointer_cell(
    spec: &CellSpec,
    scheduler: &str,
    knobs: &iqpaths_middleware::ExperimentKnobs,
    bond2_mbps: Option<f64>,
    quantize_bytes: Option<f64>,
    res: &mut CellResult,
) {
    let kind =
        scheduler_by_name(scheduler).unwrap_or_else(|| panic!("unknown scheduler `{scheduler}`"));
    let mut e = knobs.experiment(spec.cell_seed(), spec.duration);
    if spec.shards > 1 {
        e.runtime.shards = spec.shards;
    }
    let app = SmartPointerConfig {
        bond2_bw: bond2_mbps.map_or(SmartPointerConfig::default().bond2_bw, |m| m * 1.0e6),
        ..SmartPointerConfig::default()
    };

    if let Some(grain) = quantize_bytes {
        // Packet-quantized cross traffic (abl-fluid): rebuild the
        // testbed by hand with the quantized traces, same seed stream.
        let horizon = e.runtime.warmup_secs + spec.duration + 10.0;
        let (cross_a, cross_b) =
            iqpaths_traces::nlanr::figure8_cross_traffic(0.1, horizon, spec.cell_seed());
        let topo = emulab_testbed(
            quantize_cross(&cross_a, grain),
            quantize_cross(&cross_b, grain),
        );
        let paths = vec![
            OverlayPath::new(0, "Path A", topo.route(&PATH_A_ROUTE)),
            OverlayPath::new(1, "Path B", topo.route(&PATH_B_ROUTE)),
        ];
        let app = SmartPointerConfig {
            duration: spec.duration,
            ..app
        };
        let workload = SmartPointer::new(app);
        let report = if e.runtime.shards > 1 {
            let pgos = e.pgos;
            let factory =
                move |specs: Vec<StreamSpec>, n_paths: usize| kind.build(specs, n_paths, pgos);
            run_sharded(
                &paths,
                Box::new(workload),
                &factory,
                e.runtime,
                spec.duration,
                &FaultSchedule::new(),
                TraceHandle::null(),
                &mut |_| {},
            )
            .report
        } else {
            let specs = SmartPointer::specs(app);
            let sched = kind.build(specs, paths.len(), e.pgos);
            run(&paths, Box::new(workload), sched, e.runtime, spec.duration)
        };
        let atom = report.streams[ATOM].summary();
        let bond1 = report.streams[BOND1].summary();
        res.metric(
            "min_meet_fraction",
            atom.meet_fraction.min(bond1.meet_fraction),
        );
        res.metric(
            "min_ratio95",
            atom.attainment_ratio_95().min(bond1.attainment_ratio_95()),
        );
        res.metric("atom_mean_bps", atom.mean);
        return;
    }

    let out = e.run_smartpointer(app, kind);
    let atom = out.report.streams[ATOM].summary();
    let bond1 = out.report.streams[BOND1].summary();
    res.metric(
        "min_meet_fraction",
        atom.meet_fraction.min(bond1.meet_fraction),
    );
    res.metric(
        "min_ratio95",
        atom.attainment_ratio_95().min(bond1.attainment_ratio_95()),
    );
    res.metric(
        "max_jitter_ms",
        out.frame_jitter[0].max(out.frame_jitter[1]) * 1e3,
    );
    res.metric("atom_mean_bps", atom.mean);
    res.metric("startup_atom_s", out.startup_delay[0]);
    res.metric("startup_bond1_s", out.startup_delay[1]);
    // Client playback buffer implied by the startup delay (abl-buffer).
    res.metric("buffer_atom_bytes", out.startup_delay[0] * ATOM_BW / 8.0);
    res.metric("buffer_bond1_bytes", out.startup_delay[1] * BOND1_BW / 8.0);
    res.metric("frames_atom", out.frames_completed[0] as f64);
    res.metric("frames_bond1", out.frames_completed[1] as f64);
}

fn run_validation_cell(spec: &CellSpec, demand_pct: u32, res: &mut CellResult) {
    // All demand levels must be measured against the *same* path
    // distribution — the sweep compares demand quantiles on one
    // envelope realization — so the seed is derived per family, not
    // per cell.
    let seed = spec.family_seed("validation:path");
    let warmup = 30.0;
    let duration = spec.duration;
    let horizon = warmup + duration + 5.0;
    let cap = 100.0e6;
    let avail = available_bandwidth(
        &EnvelopeConfig {
            capacity: cap,
            util_range: (0.4, 0.55),
            ..Default::default()
        },
        0.1,
        horizon,
        seed,
    );
    let cross = RateTrace::new(
        0.1,
        avail.rates().iter().map(|a| (cap - a).max(0.0)).collect(),
    );
    let link = Link::new("l", cap, SimDuration::from_millis(1)).with_cross_traffic(cross);
    let truth =
        EmpiricalCdf::from_clean_samples(avail.slice(warmup, warmup + duration).rates().to_vec());

    let pkt: u32 = 1250;
    let pkt_bits = f64::from(pkt) * 8.0;
    let median = truth.quantile(0.5).expect("non-empty truth CDF");
    let req = median * f64::from(demand_pct) / 100.0;
    let q = truth.prob_below(req);
    let x = (req / pkt_bits).floor().max(1.0) as u32;
    let rate = f64::from(x) * pkt_bits;
    let promised = lemma1_probability(&truth, x, pkt, 1.0);
    let bound = lemma2_expected_misses(&truth, x, pkt, 1.0);

    let specs = vec![StreamSpec::probabilistic(0, "s", rate, 0.5, pkt)];
    let frame = (rate / (8.0 * 25.0)).round() as u32;
    let w = FramedSource::new(specs.clone(), vec![frame], 25.0, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 1);
    let cfg = RuntimeConfig {
        warmup_secs: warmup,
        seed,
        ..Default::default()
    };
    let path = OverlayPath::new(0, "p", vec![link]);
    let report = run(&[path], Box::new(w), Box::new(pgos), cfg, duration);
    let series = &report.streams[0].throughput_series;
    let meet = series.iter().filter(|&&v| v >= 0.99 * rate).count() as f64 / series.len() as f64;
    let shortfall = series
        .iter()
        .map(|&v| (f64::from(x) - v / pkt_bits).max(0.0))
        .sum::<f64>()
        / series.len() as f64;

    res.metric("demand_quantile", q);
    res.metric("rate_bps", rate);
    res.metric("lemma1_prob", promised);
    res.metric("measured_meet", meet);
    res.metric("lemma2_bound", bound);
    res.metric("measured_shortfall", shortfall);
}

fn run_prediction_cell(spec: &CellSpec, window_ds: u32, res: &mut CellResult) {
    let window = 0.1 * f64::from(window_ds);
    let horizon = spec.duration;
    // One seed across all window sizes (like the original
    // `fig04_prediction` bin): the sweep compares averaging windows
    // over a common generator stream, not over fresh realizations.
    let seed = spec.family_seed("fig04:trace");
    let series: Vec<f64> = available_bandwidth(&EnvelopeConfig::default(), window, horizon, seed)
        .rates()
        .to_vec();
    let mut errs = Vec::new();
    let mut names = Vec::new();
    for predictor in &mut extended_suite(32) {
        names.push(predictor.name().to_lowercase());
        errs.push(evaluate_mean_prediction(&series, predictor.as_mut()));
    }
    for (name, err) in names.iter().zip(&errs) {
        res.metric(&format!("{name}_err"), *err);
    }
    // The paper's "mean prediction error" aggregates the MA family
    // (the first four predictors of the suite).
    res.metric("mean_err", errs[..4].iter().sum::<f64>() / 4.0);
    let n_hist = 500.min(series.len() / 3).max(10);
    let report = evaluate_percentile_prediction(&series, n_hist, 5, 0.9);
    res.metric("percentile_failure_rate", report.failure_rate());
}
