//! # iqpaths-harness — parallel deterministic experiment engine
//!
//! The reproduction's evaluation is a matrix: scenario × CDF backend ×
//! fault schedule × seed × workload. This crate turns that matrix into
//! data and runs it:
//!
//! * [`sweeps`] — declarative [`sweeps::SweepSpec`]s mirroring the
//!   paper's tables/figures, expanded into independent
//!   [`cell::CellSpec`]s.
//! * [`cell`] — the cell model: canonical identity, per-cell seeds
//!   derived by the same salted-splitmix64 discipline as
//!   `iqpaths_simnet::fault` (so a cell is bit-identical whether run
//!   serially, rayon-parallel, or alone), and the machine-readable
//!   [`cell::CellResult`].
//! * [`runner`] — spec → result execution, ported 1:1 from the
//!   `iqpaths-bench` binaries.
//! * [`engine`] — rayon-parallel execution with an on-disk result
//!   cache keyed by spec + code version: re-runs execute only changed
//!   cells.
//! * [`report`] — results → markdown tables, patched into
//!   `EXPERIMENTS.md` between `<!-- BEGIN GENERATED: … -->` markers
//!   (with a `--check` drift gate for CI) plus `target/experiments/`
//!   CSVs.
//! * [`cache`] / [`json`] — the persistence substrate (hand-rolled
//!   canonical JSON; the workspace `serde` is a no-op shim).
//!
//! The `harness` binary is the user entry point:
//!
//! ```sh
//! cargo run --release -p iqpaths-harness --bin harness -- list
//! cargo run --release -p iqpaths-harness --bin harness -- sweep --sweep all
//! cargo run --release -p iqpaths-harness --bin harness -- report --check
//! ```
//!
//! Determinism rules (pinned by `tests/determinism.rs`):
//!
//! 1. A cell's behaviour is a pure function of its [`cell::CellSpec`].
//! 2. Cells never read ambient state (env, wall clock, global RNG).
//! 3. The executed seed is always the *derived* seed, never the raw
//!    axis seed — decorrelating cells that share an axis seed.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod cell;
pub mod engine;
pub mod json;
pub mod report;
pub mod runner;
pub mod sched_bench;
pub mod sched_ref;
pub mod sweeps;

pub use cell::{CellKind, CellResult, CellSpec};
pub use engine::{run_sweep, EngineOpts, SweepOutcome};
pub use sweeps::{all_sweeps, sweep_by_name, SweepSpec};
