//! The parallel sweep engine.
//!
//! [`run_sweep`] expands a [`SweepSpec`] into cells, partitions them
//! into cache hits and misses, executes the misses rayon-parallel, and
//! reassembles everything in expansion order. Because each cell is a
//! pure function of its spec (see [`crate::runner::run_cell`]), the
//! result vector is byte-identical whether the engine runs on one
//! thread or sixteen, with a cold or warm cache — the determinism
//! suite in `tests/determinism.rs` pins exactly that.

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;
use std::time::Instant;

use crate::cache::Cache;
use crate::cell::{CellResult, CellSpec};
use crate::runner::run_cell;
use crate::sweeps::SweepSpec;

/// Engine options.
#[derive(Debug, Clone)]
pub struct EngineOpts {
    /// Worker threads; `None` = rayon's default (one per core).
    pub threads: Option<usize>,
    /// Read/write the on-disk result cache.
    pub use_cache: bool,
    /// Print per-cell progress lines to stderr.
    pub verbose: bool,
}

impl Default for EngineOpts {
    fn default() -> Self {
        Self {
            threads: None,
            use_cache: true,
            verbose: false,
        }
    }
}

/// Outcome of one sweep run.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Sweep name.
    pub name: &'static str,
    /// One result per cell, in expansion order.
    pub results: Vec<CellResult>,
    /// Wall-clock seconds spent in the engine (includes cache I/O).
    pub wall_secs: f64,
    /// Cells actually executed this run.
    pub executed: usize,
    /// Cells served from the cache.
    pub cached: usize,
}

/// Runs every cell of `sweep` and returns the results in expansion
/// order.
pub fn run_sweep(sweep: &SweepSpec, opts: &EngineOpts) -> SweepOutcome {
    let started = Instant::now();
    let cells = sweep.expand();
    // Sweeps carrying wall-clock measurements opt out of caching
    // entirely (`SweepSpec::cacheable`): a cached timing is stale.
    let cache = (opts.use_cache && sweep.cacheable).then(Cache::new);

    // Partition into hits (position, result) and misses (position, spec).
    let mut hits: Vec<(usize, CellResult)> = Vec::new();
    let mut misses: Vec<(usize, CellSpec)> = Vec::new();
    for (i, cell) in cells.into_iter().enumerate() {
        match cache.as_ref().and_then(|c| c.get(&cell)) {
            Some(result) => hits.push((i, result)),
            None => misses.push((i, cell)),
        }
    }
    let (cached, executed) = (hits.len(), misses.len());

    let run_all = |misses: Vec<(usize, CellSpec)>| -> Vec<(usize, CellResult)> {
        misses
            .into_par_iter()
            .map(|(i, spec)| {
                if opts.verbose {
                    eprintln!("  [run] {}", spec.id());
                }
                let result = run_cell(&spec);
                if let Some(c) = &cache {
                    c.put(&spec, &result);
                }
                (i, result)
            })
            .collect()
    };
    let mut fresh = match opts.threads {
        Some(n) => ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("thread pool")
            .install(|| run_all(misses)),
        None => run_all(misses),
    };

    let mut slots: Vec<(usize, CellResult)> = hits;
    slots.append(&mut fresh);
    slots.sort_by_key(|&(i, _)| i);
    SweepOutcome {
        name: sweep.name,
        results: slots.into_iter().map(|(_, r)| r).collect(),
        wall_secs: started.elapsed().as_secs_f64(),
        executed,
        cached,
    }
}

/// Runs one cell in isolation, bypassing the cache — the "fresh
/// process" arm of the determinism suite and the `harness cell`
/// debugging subcommand.
pub fn run_isolated(spec: &CellSpec) -> CellResult {
    run_cell(spec)
}
