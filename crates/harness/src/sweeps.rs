//! Declarative sweep definitions: the experiment matrix of the
//! reproduction, expressed as data.
//!
//! A [`SweepSpec`] is `templates × seeds`: each template is one
//! `(group, label, kind)` setting, each axis seed replicates the whole
//! template set, and [`SweepSpec::expand`] flattens the product into
//! independent [`CellSpec`]s for the engine. The definitions below
//! mirror the five `iqpaths-bench` binaries (which are now thin
//! wrappers over these sweeps) plus a `smoke` mini-matrix for CI.

use iqpaths_middleware::knobs::{cdf_mode_name, scheduler_name, ExperimentKnobs};
use iqpaths_middleware::SchedulerKind;
use iqpaths_overlay::node::CdfMode;
use iqpaths_testkit::{mode_name, sweep_modes, FaultScenario};

use crate::cell::{CellKind, CellSpec};

/// One sweep setting, replicated across the seed axis.
#[derive(Debug, Clone)]
pub struct CellTemplate {
    /// Study group within the sweep (may be empty).
    pub group: String,
    /// Setting label for report rows.
    pub label: String,
    /// What the cell runs.
    pub kind: CellKind,
    /// Duration override for this template (else the sweep default).
    pub duration: Option<f64>,
    /// Shard-count override for this template (else the sweep default,
    /// i.e. the `--shards` CLI knob). Sweeps whose shard axis is
    /// intrinsic — the scalability family pins serial and sharded twins
    /// of the same cell — set this; everything else leaves it `None`.
    pub shards: Option<usize>,
}

impl CellTemplate {
    fn new(group: &str, label: &str, kind: CellKind) -> Self {
        Self {
            group: group.to_string(),
            label: label.to_string(),
            kind,
            duration: None,
            shards: None,
        }
    }
}

/// A declarative experiment matrix.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Sweep name (`fault_sweep`, `seed_sweep`, …).
    pub name: &'static str,
    /// One-line description for `harness list`.
    pub about: &'static str,
    /// Default measured duration per cell in seconds.
    pub duration: f64,
    /// Axis seeds (each replicates every template).
    pub seeds: Vec<u64>,
    /// Data-plane shards per cell (1 = the classic serial runtime).
    pub shards: usize,
    /// Whether results may be served from / written to the on-disk
    /// cache. `false` for sweeps whose results carry wall-clock
    /// measurements (e.g. `sched_throughput`): a cached timing is a
    /// stale timing, so those cells re-run every invocation.
    pub cacheable: bool,
    /// The settings.
    pub templates: Vec<CellTemplate>,
}

impl SweepSpec {
    /// Flattens `templates × seeds` into independent cells, template-
    /// major (all seeds of a template are adjacent, matching report
    /// grouping).
    pub fn expand(&self) -> Vec<CellSpec> {
        let mut cells = Vec::with_capacity(self.templates.len() * self.seeds.len());
        for t in &self.templates {
            for &seed in &self.seeds {
                cells.push(CellSpec {
                    sweep: self.name.to_string(),
                    group: t.group.clone(),
                    label: t.label.clone(),
                    seed,
                    duration: t.duration.unwrap_or(self.duration),
                    shards: t.shards.unwrap_or(self.shards).max(1),
                    kind: t.kind.clone(),
                });
            }
        }
        cells
    }

    /// Returns the same sweep with every cell running `shards`
    /// data-plane workers (the `--shards` CLI knob). Templates that pin
    /// their own shard count ([`CellTemplate::shards`]) keep it — the
    /// scalability family's intrinsic serial/sharded axis survives a
    /// CLI override.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }
}

fn conformance_template(group: &str, mode: CdfMode, scenario: FaultScenario) -> CellTemplate {
    CellTemplate::new(
        group,
        &format!("{}/{}", mode_name(mode), scenario.name()),
        CellKind::Conformance {
            mode: cdf_mode_name(mode),
            scenario: scenario.name().to_string(),
        },
    )
}

fn smartpointer_template(
    group: &str,
    label: &str,
    sched: SchedulerKind,
    knobs: ExperimentKnobs,
) -> CellTemplate {
    CellTemplate::new(
        group,
        label,
        CellKind::SmartPointer {
            scheduler: scheduler_name(sched).to_string(),
            knobs,
            bond2_mbps: None,
            quantize_bytes: None,
        },
    )
}

/// `{Exact, Rolling, Sketch} × {no-fault, flap, blackout, churn}`
/// guarantee conformance (the `fault_sweep` binary).
pub fn fault_sweep(seed: u64, duration: f64) -> SweepSpec {
    let duration = duration.clamp(60.0, 120.0);
    let mut templates = Vec::new();
    for mode in sweep_modes() {
        for scenario in FaultScenario::ALL {
            templates.push(conformance_template("", mode, scenario));
        }
    }
    SweepSpec {
        name: "fault_sweep",
        about: "guarantee conformance across CDF backends x fault scenarios",
        duration,
        seeds: vec![seed],
        shards: 1,
        cacheable: true,
        templates,
    }
}

/// Figure 11 headline comparison across ten cross-traffic seeds (the
/// `seed_sweep` binary).
pub fn seed_sweep(duration: f64) -> SweepSpec {
    let schedulers = [
        SchedulerKind::Msfq,
        SchedulerKind::Pgos,
        SchedulerKind::OptSched,
    ];
    SweepSpec {
        name: "seed_sweep",
        about: "SmartPointer critical-stream guarantees across 10 seeds x 3 schedulers",
        duration: duration.min(60.0),
        seeds: (1..=10).collect(),
        shards: 1,
        cacheable: true,
        templates: schedulers
            .into_iter()
            .map(|s| smartpointer_template("", scheduler_name(s), s, ExperimentKnobs::none()))
            .collect(),
    }
}

/// The DESIGN.md §6 ablation studies (the `ablations` binary).
pub fn ablations(seed: u64, duration: f64) -> SweepSpec {
    let mut templates = Vec::new();
    for w in [0.25, 0.5, 1.0, 2.0, 4.0] {
        templates.push(smartpointer_template(
            "abl-window",
            &format!("tw={w}"),
            SchedulerKind::Pgos,
            ExperimentKnobs {
                window_secs: Some(w),
                ..ExperimentKnobs::none()
            },
        ));
    }
    for ks in [0.0, 0.1, 0.2, 0.4, 1.0] {
        templates.push(smartpointer_template(
            "abl-remap",
            &format!("ks={ks}"),
            SchedulerKind::Pgos,
            ExperimentKnobs {
                remap_ks: Some(ks),
                ..ExperimentKnobs::none()
            },
        ));
    }
    for noise in [0.0, 0.05, 0.1, 0.2, 0.3] {
        templates.push(smartpointer_template(
            "abl-noise",
            &format!("noise={noise}"),
            SchedulerKind::Pgos,
            ExperimentKnobs {
                probe_noise: Some(noise),
                ..ExperimentKnobs::none()
            },
        ));
    }
    for load in [40.0, 55.0, 70.0, 85.0] {
        for sched in [SchedulerKind::Pgos, SchedulerKind::Msfq] {
            let mut t = smartpointer_template(
                "abl-load",
                &format!("bond2={load}M/{}", scheduler_name(sched)),
                sched,
                ExperimentKnobs::none(),
            );
            if let CellKind::SmartPointer { bond2_mbps, .. } = &mut t.kind {
                *bond2_mbps = Some(load);
            }
            templates.push(t);
        }
    }
    for mode in [
        CdfMode::Exact,
        CdfMode::Histogram {
            bins: 512,
            resolution: 200,
            max_bw: iqpaths_traces::EMULAB_LINK_CAPACITY,
        },
        CdfMode::Rolling,
        CdfMode::Sketch { markers: 33 },
    ] {
        templates.push(smartpointer_template(
            "abl-hist",
            &cdf_mode_name(mode),
            SchedulerKind::Pgos,
            ExperimentKnobs {
                cdf_mode: Some(mode),
                ..ExperimentKnobs::none()
            },
        ));
    }
    for sched in [SchedulerKind::Msfq, SchedulerKind::Pgos] {
        templates.push(smartpointer_template(
            "abl-buffer",
            scheduler_name(sched),
            sched,
            ExperimentKnobs::none(),
        ));
    }
    // Fluid vs packet-quantized cross traffic (DESIGN.md §2).
    templates.push(smartpointer_template(
        "abl-fluid",
        "fluid",
        SchedulerKind::Pgos,
        ExperimentKnobs::none(),
    ));
    let mut quantized = smartpointer_template(
        "abl-fluid",
        "quantized-1500B",
        SchedulerKind::Pgos,
        ExperimentKnobs::none(),
    );
    if let CellKind::SmartPointer { quantize_bytes, .. } = &mut quantized.kind {
        *quantize_bytes = Some(1500.0);
    }
    templates.push(quantized);

    SweepSpec {
        name: "ablations",
        about: "DESIGN.md \u{a7}6 ablations: window, remap, noise, load, CDF, buffer, fluid",
        duration,
        seeds: vec![seed],
        shards: 1,
        cacheable: true,
        templates,
    }
}

/// Lemma 1/2 promise-vs-measurement validation across demand levels
/// (the `validation` binary).
pub fn validation(seed: u64, duration: f64) -> SweepSpec {
    SweepSpec {
        name: "validation",
        about: "Lemma 1/2 promises from the truth CDF vs measured service",
        duration,
        seeds: vec![seed],
        shards: 1,
        cacheable: true,
        templates: [55u32, 70, 85, 95, 105]
            .into_iter()
            .map(|pct| {
                CellTemplate::new(
                    "",
                    &format!("demand={pct}%"),
                    CellKind::Validation { demand_pct: pct },
                )
            })
            .collect(),
    }
}

/// Figure 4 predictor comparison across measurement windows (the
/// `fig04_prediction` binary). The duration is the trace horizon.
pub fn fig04_prediction(seed: u64) -> SweepSpec {
    SweepSpec {
        name: "fig04_prediction",
        about: "Figure 4: mean-predictor error vs percentile failure rate",
        duration: 20_000.0,
        seeds: vec![seed],
        shards: 1,
        cacheable: true,
        templates: (1..=10u32)
            .map(|k| {
                CellTemplate::new(
                    "",
                    &format!("w={:.1}s", 0.1 * f64::from(k)),
                    CellKind::Prediction { window_ds: k },
                )
            })
            .collect(),
    }
}

/// CI mini-matrix: two seeds, two scenarios, all three sweep CDF
/// backends, at the shortest duration the fault scenarios allow —
/// enough to exercise the full engine path in minutes.
pub fn smoke() -> SweepSpec {
    let mut templates = Vec::new();
    for mode in sweep_modes() {
        for scenario in [FaultScenario::NoFault, FaultScenario::Blackout] {
            templates.push(conformance_template("", mode, scenario));
        }
    }
    SweepSpec {
        name: "smoke",
        about: "CI mini-matrix: 3 CDF backends x 2 scenarios x 2 seeds, short runs",
        duration: 48.0,
        seeds: vec![7, 8],
        shards: 1,
        cacheable: true,
        templates,
    }
}

/// Probe-budget ablation: `{periodic, active} planners × {100, 50, 25,
/// 10, 5}% budgets × {flap, blackout, churn} fault scenarios`, each
/// cell a full conformance case reporting Lemma 1/2 verdicts plus the
/// planner's per-path probe spend. Everything in the result — verdicts,
/// margins, probe counts — is deterministic, so the sweep caches like
/// the conformance families (the `BENCH_probe_budget.json` artifact
/// carries no wall-clock columns).
pub fn probe_budget(seed: u64, duration: f64) -> SweepSpec {
    let duration = duration.clamp(60.0, 120.0);
    let scenarios = [
        FaultScenario::Flap,
        FaultScenario::Blackout,
        FaultScenario::Churn,
    ];
    let mut templates = Vec::new();
    for scenario in scenarios {
        for planner in ["periodic", "active"] {
            for budget in [100u32, 50, 25, 10, 5] {
                templates.push(CellTemplate::new(
                    scenario.name(),
                    &format!("{planner}/{budget}"),
                    CellKind::ProbeBudget {
                        planner: planner.to_string(),
                        budget_pct: budget,
                        scenario: scenario.name().to_string(),
                    },
                ));
            }
        }
    }
    SweepSpec {
        name: "probe_budget",
        about: "probe planners x budgets x fault scenarios: conformance vs probe spend",
        duration,
        seeds: vec![seed],
        shards: 1,
        cacheable: true,
        templates,
    }
}

/// Diversity-vs-PGOS mapping matrix: `{pgos, diversity} mappings ×
/// {flap, blackout, churn, uncorrelated, correlated} scenarios`, each
/// cell a full conformance case reporting Lemma 1/2 verdicts, the
/// delivered-before-deadline ratio per guaranteed stream, and the
/// erasure-coding evidence (groups decoded, blocks recovered). The
/// lossy scenarios are the ROADMAP hypothesis: coded striping wins
/// when path failures are uncorrelated and buys nothing when every
/// path blacks out at once — the classic mapping's *expected* lemma
/// failures under `uncorrelated` render as honest `**FAIL**` rows,
/// exactly like the starved budgets of the probe-budget sweep.
/// Everything in the result is deterministic, so the sweep caches.
pub fn diversity(seed: u64, duration: f64) -> SweepSpec {
    let duration = duration.clamp(60.0, 120.0);
    let scenarios = [
        FaultScenario::Flap,
        FaultScenario::Blackout,
        FaultScenario::Churn,
        FaultScenario::Uncorrelated,
        FaultScenario::Correlated,
    ];
    let mut templates = Vec::new();
    for scenario in scenarios {
        for mapping in ["pgos", "diversity"] {
            templates.push(CellTemplate::new(
                scenario.name(),
                mapping,
                CellKind::Diversity {
                    mapping: mapping.to_string(),
                    scenario: scenario.name().to_string(),
                },
            ));
        }
    }
    SweepSpec {
        name: "diversity",
        about: "Diversity vs PGOS mappings x capacity + silent-loss fault scenarios",
        duration,
        seeds: vec![seed],
        shards: 1,
        cacheable: true,
        templates,
    }
}

/// The scheduling fast-path throughput ladder: the refactored PGOS hot
/// path vs the frozen pre-refactor reference ([`crate::sched_ref`])
/// over `{10, 100, 1k, 10k} streams × {2, 8, 32} paths × {1, 4}
/// workers`. The decision counts, window counts and the fast≡legacy
/// equivalence verdict are deterministic (they feed the checked
/// `EXPERIMENTS.md` block); the packets/sec and speedup columns are
/// wall-clock measurements and only reach the
/// `BENCH_sched_throughput.json` artifact — which is also why this
/// sweep is the one non-cacheable family.
pub fn sched_throughput(seed: u64) -> SweepSpec {
    let mut templates = Vec::new();
    for streams in [10u32, 100, 1_000, 10_000] {
        for paths in [2u32, 8, 32] {
            for workers in [1u32, 4] {
                templates.push(CellTemplate::new(
                    "",
                    &format!("{streams}x{paths}x{workers}"),
                    CellKind::SchedThroughput {
                        streams,
                        paths,
                        workers,
                    },
                ));
            }
        }
    }
    SweepSpec {
        name: "sched_throughput",
        about: "zero-alloc fast path vs pre-refactor reference: streams x paths x workers",
        duration: 1.0,
        seeds: vec![seed],
        shards: 1,
        cacheable: false,
        templates,
    }
}

/// Graph-scale many-tenant conformance: seeded random overlays
/// (Waxman / preferential attachment), tenants routed over Yen's k
/// cheapest loopless paths, flash-crowd waves + relay churn, per-tenant
/// Lemma 1/2 verdicts. The axes climb `nodes × tenants × k`, with two
/// cells replicated on the 4-shard data plane (pinned per template, so
/// the serial/sharded pair survives a `--shards` override). The
/// conformance verdicts and throughput *per virtual second* are
/// deterministic and feed the checked `EXPERIMENTS.md` block; the
/// wall-clock packets/sec only reach `BENCH_scalability.json`, which is
/// why the sweep is uncacheable — same policy as `sched_throughput`.
pub fn scalability(seed: u64) -> SweepSpec {
    let axes: [(&str, u32, u32, u32, Option<usize>); 8] = [
        ("waxman", 64, 8, 2, None),
        ("waxman", 64, 16, 2, None),
        ("ba", 64, 16, 2, None),
        ("waxman", 128, 32, 3, None),
        ("waxman", 256, 64, 4, None),
        ("ba", 256, 64, 4, None),
        ("waxman", 64, 16, 2, Some(4)),
        ("waxman", 256, 64, 4, Some(4)),
    ];
    let templates = axes
        .into_iter()
        .map(|(model, nodes, tenants, k, shards)| {
            let suffix = shards.map_or(String::new(), |s| format!("/sh{s}"));
            let mut t = CellTemplate::new(
                "",
                &format!("{model}/{nodes}n/{tenants}t/k{k}{suffix}"),
                CellKind::Scalability {
                    model: model.to_string(),
                    nodes,
                    tenants,
                    k,
                },
            );
            t.shards = shards;
            t
        })
        .collect();
    SweepSpec {
        name: "scalability",
        about: "graph-scale many-tenant conformance: nodes x tenants x k x shards",
        duration: 24.0,
        seeds: vec![seed],
        shards: 1,
        cacheable: false,
        templates,
    }
}

/// Every defined sweep, report order. `seed`/`duration` parameterize
/// the single-seed sweeps exactly like the old `IQP_SEED`/`IQP_DURATION`
/// env knobs (the smoke matrix and the seed-sweep axis stay fixed).
pub fn all_sweeps(seed: u64, duration: f64) -> Vec<SweepSpec> {
    vec![
        fig04_prediction(seed),
        validation(seed, duration),
        fault_sweep(seed, duration.clamp(60.0, 120.0)),
        seed_sweep(duration),
        ablations(seed, duration),
        smoke(),
        probe_budget(seed, duration.clamp(60.0, 120.0)),
        diversity(seed, duration.clamp(60.0, 120.0)),
        scalability(seed),
        sched_throughput(seed),
    ]
}

/// Looks a sweep up by name with the standard knobs applied.
pub fn sweep_by_name(name: &str, seed: u64, duration: f64) -> Option<SweepSpec> {
    all_sweeps(seed, duration)
        .into_iter()
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_counts_match_the_matrix() {
        assert_eq!(fault_sweep(42, 120.0).expand().len(), 12);
        assert_eq!(seed_sweep(60.0).expand().len(), 30);
        assert_eq!(ablations(42, 150.0).expand().len(), 31);
        assert_eq!(validation(42, 150.0).expand().len(), 5);
        assert_eq!(fig04_prediction(42).expand().len(), 10);
        assert_eq!(smoke().expand().len(), 12);
        assert_eq!(probe_budget(42, 120.0).expand().len(), 30);
        assert_eq!(diversity(42, 120.0).expand().len(), 10);
        assert_eq!(scalability(42).expand().len(), 8);
        assert_eq!(sched_throughput(42).expand().len(), 24);
    }

    #[test]
    fn only_wall_clock_sweeps_are_uncacheable() {
        // Both carry wall-clock measurements in their JSON artifacts;
        // a cached timing is a stale timing.
        for sweep in all_sweeps(42, 120.0) {
            assert_eq!(
                sweep.cacheable,
                !matches!(sweep.name, "sched_throughput" | "scalability"),
                "unexpected cacheability for {}",
                sweep.name
            );
        }
    }

    #[test]
    fn scalability_pins_its_shard_axis_against_cli_overrides() {
        let cells = scalability(42).with_shards(4).expand();
        let pinned_serial: Vec<&CellSpec> = cells
            .iter()
            .filter(|c| !c.label.ends_with("/sh4"))
            .collect();
        // Unpinned templates follow the CLI override…
        assert!(pinned_serial.iter().all(|c| c.shards == 4));
        // …while the intrinsic sh4 twins keep their own pin.
        let twins: Vec<&CellSpec> = cells.iter().filter(|c| c.label.ends_with("/sh4")).collect();
        assert_eq!(twins.len(), 2);
        assert!(twins.iter().all(|c| c.shards == 4));
        // Default expansion: the serial/sharded twins replay the same
        // derived seed under distinct identities.
        let default = scalability(42).expand();
        let serial = default
            .iter()
            .find(|c| c.label == "waxman/256n/64t/k4")
            .unwrap();
        let sharded = default
            .iter()
            .find(|c| c.label == "waxman/256n/64t/k4/sh4")
            .unwrap();
        assert_eq!(serial.cell_seed(), sharded.cell_seed());
        assert_ne!(serial.id(), sharded.id());
        assert_eq!(serial.shards, 1);
        assert_eq!(sharded.shards, 4);
    }

    #[test]
    fn cell_ids_are_unique_within_a_sweep() {
        for sweep in all_sweeps(42, 120.0) {
            let mut ids: Vec<String> = sweep.expand().iter().map(CellSpec::id).collect();
            let n = ids.len();
            ids.sort();
            ids.dedup();
            assert_eq!(ids.len(), n, "duplicate cell id in {}", sweep.name);
        }
    }

    #[test]
    fn smoke_duration_clears_the_scenario_floor() {
        // FaultScenario::schedule asserts span > 40 s.
        for cell in smoke().expand() {
            assert!(cell.duration > 40.0);
        }
    }
}
