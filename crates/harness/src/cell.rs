//! Sweep cells: the unit of experiment execution.
//!
//! A [`CellSpec`] is a pure-data description of one run — experiment
//! kind, knobs, axis seed, duration. Three derived quantities make the
//! engine work, all computed from the spec's canonical rendering and
//! nothing else:
//!
//! * **identity** ([`CellSpec::id`]) — the stable human-readable name a
//!   cell sorts, logs and caches under;
//! * **cell seed** ([`CellSpec::cell_seed`]) — the RNG seed the run is
//!   executed with, derived by the workspace's salted-splitmix64
//!   discipline ([`iqpaths_simnet::fault::splitmix64`]): the axis seed
//!   XOR an FNV-1a hash of the cell's identity, passed through
//!   splitmix64. Because it is a pure function of the spec, a cell is
//!   bit-identical whether it runs serially, rayon-parallel, in any
//!   order, or alone in a fresh process;
//! * **cache key** (see [`crate::cache`]) — identity hash + code
//!   version, so re-runs only execute changed cells.

use iqpaths_middleware::ExperimentKnobs;
use iqpaths_simnet::fault::salted_seed;

use crate::json::Json;

/// What one cell runs. Variants mirror the four experiment families
/// the paper's evaluation matrix is built from.
#[derive(Debug, Clone, PartialEq)]
pub enum CellKind {
    /// Testkit guarantee-conformance case: seeded 3-path topology,
    /// PGOS, Lemma 1/2 verdicts (the `fault_sweep` family).
    /// `mode`/`scenario` are canonical names (`exact`, `blackout`, …).
    Conformance {
        /// CDF backend name (see `iqpaths_testkit::mode_name`).
        mode: String,
        /// Fault scenario name (see `FaultScenario::name`).
        scenario: String,
    },
    /// Figure 8 SmartPointer application study (the `seed_sweep` and
    /// `ablations` families).
    SmartPointer {
        /// Scheduler canonical name (see
        /// `iqpaths_middleware::knobs::scheduler_name`).
        scheduler: String,
        /// Sparse runtime/PGOS overrides.
        knobs: ExperimentKnobs,
        /// Bond2 offered load override in Mbps (the `abl-load` axis).
        bond2_mbps: Option<f64>,
        /// Packet-quantize the cross traffic at this grain in bytes
        /// (the `abl-fluid` axis; `None` = fluid).
        quantize_bytes: Option<f64>,
    },
    /// Lemma 1/2 promise-vs-measurement validation at one demand level
    /// (the `validation` family). The demand is `frac` × the
    /// ground-truth distribution's median.
    Validation {
        /// Demand as a fraction of the median, in percent (55 → 0.55 ×
        /// median). Integer so the cell identity never renders a float.
        demand_pct: u32,
    },
    /// Figure 4 predictor comparison at one measurement window (the
    /// `fig04_prediction` family).
    Prediction {
        /// Measurement window in deciseconds (1 → 0.1 s).
        window_ds: u32,
    },
    /// Graph-scale many-tenant conformance: a seeded random overlay
    /// (`iqpaths_testkit::GraphGen`), tenants routed over Yen's k
    /// cheapest loopless paths, flash-crowd waves + relay churn, and
    /// per-tenant Lemma 1/2 verdicts (the `scalability` family).
    Scalability {
        /// Graph wiring model name (`waxman` / `ba`; see
        /// `iqpaths_testkit::GraphModel::by_name`).
        model: String,
        /// Overlay node count.
        nodes: u32,
        /// Tenant ((src, dst) pair) count.
        tenants: u32,
        /// Paths requested per tenant (Yen's k).
        k: u32,
    },
    /// Probe-budget ablation: one conformance scenario run under an
    /// explicit probe planner and probes-per-window budget, reporting
    /// Lemma 1/2 verdicts plus the planner's probe spend (the
    /// `probe_budget` family).
    ProbeBudget {
        /// Planner canonical name (see
        /// `iqpaths_overlay::planner::PlannerKind::name`).
        planner: String,
        /// Budget as a percentage of the periodic probe-everything
        /// rate (100 = unlimited legacy rate).
        budget_pct: u32,
        /// Fault scenario name (see `FaultScenario::name`).
        scenario: String,
    },
    /// Diversity-vs-PGOS mapping comparison: one conformance scenario
    /// run under an explicit resource-mapping mode, reporting Lemma
    /// 1/2 verdicts, the delivered-before-deadline ratio and the
    /// erasure-coding evidence (the `diversity` family; see
    /// `docs/POLICIES.md`).
    Diversity {
        /// Mapping-mode canonical name (see
        /// `iqpaths_middleware::knobs::mapping_mode_name`).
        mapping: String,
        /// Fault scenario name (see `FaultScenario::name`).
        scenario: String,
    },
    /// Scheduling fast-path throughput ladder: the refactored PGOS hot
    /// path vs the frozen pre-refactor reference
    /// ([`crate::sched_ref`]) over one synthetic workload scale (the
    /// `sched_throughput` family).
    SchedThroughput {
        /// Stream count.
        streams: u32,
        /// Overlay path count.
        paths: u32,
        /// Independent scheduler shards driven on their own OS threads
        /// (round-robin stream partition; 1 = single instance).
        workers: u32,
    },
}

impl CellKind {
    /// Canonical rendering of the kind + parameters (participates in
    /// the cell identity, the derived seed and the cache key — never
    /// change an existing rendering).
    pub fn canon(&self) -> String {
        match self {
            CellKind::Conformance { mode, scenario } => {
                format!("conformance:mode={mode},scenario={scenario}")
            }
            CellKind::SmartPointer {
                scheduler,
                knobs,
                bond2_mbps,
                quantize_bytes,
            } => {
                let mut s = format!("smartpointer:sched={scheduler}");
                let k = knobs.canon();
                if !k.is_empty() {
                    s.push(',');
                    s.push_str(&k);
                }
                if let Some(b) = bond2_mbps {
                    s.push_str(&format!(",bond2={b}"));
                }
                if let Some(q) = quantize_bytes {
                    s.push_str(&format!(",quantize={q}"));
                }
                s
            }
            CellKind::Validation { demand_pct } => format!("validation:demand={demand_pct}"),
            CellKind::Scalability {
                model,
                nodes,
                tenants,
                k,
            } => format!("scalability:model={model},nodes={nodes},tenants={tenants},k={k}"),
            CellKind::Prediction { window_ds } => format!("prediction:window_ds={window_ds}"),
            CellKind::ProbeBudget {
                planner,
                budget_pct,
                scenario,
            } => format!("probebudget:planner={planner},budget={budget_pct},scenario={scenario}"),
            CellKind::Diversity { mapping, scenario } => {
                format!("diversity:mapping={mapping},scenario={scenario}")
            }
            CellKind::SchedThroughput {
                streams,
                paths,
                workers,
            } => format!("schedthroughput:streams={streams},paths={paths},workers={workers}"),
        }
    }
}

/// One fully specified experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Sweep family (`fault_sweep`, `seed_sweep`, …).
    pub sweep: String,
    /// Sub-table / study within the family (`abl-window`, …; may be
    /// empty).
    pub group: String,
    /// Human-readable setting label for report rows (`tw=0.5`, …).
    pub label: String,
    /// Axis seed (the seed the sweep enumerates; the run executes with
    /// the derived [`CellSpec::cell_seed`]).
    pub seed: u64,
    /// Measured duration in seconds.
    pub duration: f64,
    /// Data-plane shard count (1 = the classic serial runtime).
    /// Participates in the cell identity — and therefore the cache
    /// key — only when ≠ 1, and never in the derived seed, so a
    /// sharded run replays exactly the same experiment as its serial
    /// twin and the two results stay comparable.
    pub shards: usize,
    /// Experiment kind + parameters.
    pub kind: CellKind,
}

/// FNV-1a 64-bit — the identity-to-salt hash behind cell seeds and
/// cache keys (re-exported from the workspace's single seed-derivation
/// home, `iqpaths_simnet::fault`).
pub use iqpaths_simnet::fault::fnv1a64;

impl CellSpec {
    /// Stable identity: `sweep/group/label` plus everything that
    /// distinguishes the run.
    pub fn id(&self) -> String {
        let shards = if self.shards == 1 {
            String::new()
        } else {
            format!(",sh{}", self.shards)
        };
        format!(
            "{}/{}/{}@s{},d{}{shards},{}",
            self.sweep,
            self.group,
            self.label,
            self.seed,
            self.duration,
            self.kind.canon()
        )
    }

    /// The seed this cell executes with: axis seed salted with the
    /// cell identity through splitmix64 (the `simnet::fault`
    /// discipline). Independent cells get decorrelated seed streams;
    /// the same cell always gets the same seed, no matter where or in
    /// what order it runs.
    pub fn cell_seed(&self) -> u64 {
        salted_seed(self.seed, &self.kind.canon())
    }

    /// A seed shared by every cell of the same axis seed that names the
    /// same `salt` — for sweeps whose cells must vary one knob against a
    /// *common* random environment (e.g. the validation sweep's demand
    /// levels, which only compare meaningfully against one path
    /// distribution). Same derivation discipline as
    /// [`CellSpec::cell_seed`], just salted with an explicit family
    /// name instead of the full cell identity; still never the raw
    /// axis seed.
    pub fn family_seed(&self, salt: &str) -> u64 {
        salted_seed(self.seed, salt)
    }
}

/// The machine-readable outcome of one cell: flat named metrics plus
/// boolean verdicts, serialized as canonical JSON (the cache format and
/// the bit-compare surface of the determinism suite).
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The spec identity this result was produced from.
    pub id: String,
    /// Sweep family (copied from the spec for self-description).
    pub sweep: String,
    /// Study group.
    pub group: String,
    /// Setting label.
    pub label: String,
    /// Axis seed.
    pub seed: u64,
    /// Derived seed the run executed with.
    pub cell_seed: u64,
    /// Named scalar metrics, in emission order.
    pub metrics: Vec<(String, f64)>,
    /// Named pass/fail verdicts (conformance cells), in emission order.
    pub verdicts: Vec<(String, bool)>,
}

impl CellResult {
    /// Starts an empty result for `spec`.
    pub fn for_spec(spec: &CellSpec) -> Self {
        Self {
            id: spec.id(),
            sweep: spec.sweep.clone(),
            group: spec.group.clone(),
            label: spec.label.clone(),
            seed: spec.seed,
            cell_seed: spec.cell_seed(),
            metrics: Vec::new(),
            verdicts: Vec::new(),
        }
    }

    /// Records one metric.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Records one verdict.
    pub fn verdict(&mut self, name: &str, pass: bool) {
        self.verdicts.push((name.to_string(), pass));
    }

    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// True when every verdict passed (vacuously true without any).
    pub fn all_pass(&self) -> bool {
        self.verdicts.iter().all(|&(_, pass)| pass)
    }

    /// Canonical JSON rendering (the cache file format).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("id".into(), Json::Str(self.id.clone())),
            ("sweep".into(), Json::Str(self.sweep.clone())),
            ("group".into(), Json::Str(self.group.clone())),
            ("label".into(), Json::Str(self.label.clone())),
            ("seed".into(), Json::Num(self.seed as f64)),
            (
                "cell_seed_hex".into(),
                Json::Str(format!("{:016x}", self.cell_seed)),
            ),
            (
                "metrics".into(),
                Json::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "verdicts".into(),
                Json::Obj(
                    self.verdicts
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Bool(*v)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Canonical serialized form — byte-compare two results with this.
    pub fn to_text(&self) -> String {
        self.to_json().to_text()
    }

    /// Parses a cached result.
    ///
    /// # Errors
    /// Returns a message when the text is not a well-formed result.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let field_str = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{k}`"))
        };
        let cell_seed = u64::from_str_radix(&field_str("cell_seed_hex")?, 16)
            .map_err(|e| format!("bad cell_seed_hex: {e}"))?;
        let metrics = match doc.get("metrics") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_f64()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("metric `{k}` is not a number"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `metrics` object".into()),
        };
        let verdicts = match doc.get("verdicts") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(k, v)| {
                    v.as_bool()
                        .map(|v| (k.clone(), v))
                        .ok_or_else(|| format!("verdict `{k}` is not a bool"))
                })
                .collect::<Result<Vec<_>, _>>()?,
            _ => return Err("missing `verdicts` object".into()),
        };
        Ok(Self {
            id: field_str("id")?,
            sweep: field_str("sweep")?,
            group: field_str("group")?,
            label: field_str("label")?,
            seed: doc
                .get("seed")
                .and_then(Json::as_f64)
                .ok_or("missing `seed`")? as u64,
            cell_seed,
            metrics,
            verdicts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CellSpec {
        CellSpec {
            sweep: "fault_sweep".into(),
            group: "".into(),
            label: "exact/blackout".into(),
            seed: 42,
            duration: 120.0,
            shards: 1,
            kind: CellKind::Conformance {
                mode: "exact".into(),
                scenario: "blackout".into(),
            },
        }
    }

    #[test]
    fn identity_is_stable_and_seed_is_derived() {
        let s = spec();
        assert_eq!(
            s.id(),
            "fault_sweep//exact/blackout@s42,d120,conformance:mode=exact,scenario=blackout"
        );
        // Pinned derivation: axis seed ^ fnv(kind canon) through
        // splitmix64. A change here silently invalidates every recorded
        // experiment — keep it locked.
        use iqpaths_simnet::fault::splitmix64;
        let salt = fnv1a64(b"conformance:mode=exact,scenario=blackout");
        assert_eq!(s.cell_seed(), splitmix64(42 ^ salt));
        // Different axis seeds and kinds decorrelate.
        let mut other = spec();
        other.seed = 43;
        assert_ne!(other.cell_seed(), s.cell_seed());
    }

    #[test]
    fn shards_rename_the_cell_but_keep_its_seed() {
        // shards ≠ 1 gets its own identity (distinct cache entry) while
        // replaying the same derived seed — that's what makes serial
        // and sharded results comparable cell-for-cell.
        let mut s = spec();
        s.shards = 4;
        assert_eq!(
            s.id(),
            "fault_sweep//exact/blackout@s42,d120,sh4,conformance:mode=exact,scenario=blackout"
        );
        assert_eq!(s.cell_seed(), spec().cell_seed());
        assert_ne!(s.id(), spec().id());
    }

    #[test]
    fn scalability_canon_is_pinned() {
        // Frozen: participates in cell identity, seed and cache key.
        let kind = CellKind::Scalability {
            model: "waxman".into(),
            nodes: 256,
            tenants: 64,
            k: 4,
        };
        assert_eq!(
            kind.canon(),
            "scalability:model=waxman,nodes=256,tenants=64,k=4"
        );
    }

    #[test]
    fn probe_budget_canon_is_pinned() {
        // Frozen: participates in cell identity, seed and cache key.
        let kind = CellKind::ProbeBudget {
            planner: "active".into(),
            budget_pct: 25,
            scenario: "flap".into(),
        };
        assert_eq!(
            kind.canon(),
            "probebudget:planner=active,budget=25,scenario=flap"
        );
        // The budget renders into the full cell id like the shard count
        // does, so budgeted cells cache apart from unlimited ones.
        let s = CellSpec {
            sweep: "probe_budget".into(),
            group: "flap".into(),
            label: "active/25".into(),
            seed: 42,
            duration: 120.0,
            shards: 1,
            kind,
        };
        assert_eq!(
            s.id(),
            "probe_budget/flap/active/25@s42,d120,probebudget:planner=active,budget=25,scenario=flap"
        );
    }

    #[test]
    fn diversity_canon_is_pinned() {
        // Frozen: participates in cell identity, seed and cache key.
        let kind = CellKind::Diversity {
            mapping: "diversity".into(),
            scenario: "uncorrelated".into(),
        };
        assert_eq!(
            kind.canon(),
            "diversity:mapping=diversity,scenario=uncorrelated"
        );
        let s = CellSpec {
            sweep: "diversity".into(),
            group: "uncorrelated".into(),
            label: "diversity".into(),
            seed: 42,
            duration: 120.0,
            shards: 1,
            kind,
        };
        assert_eq!(
            s.id(),
            "diversity/uncorrelated/diversity@s42,d120,diversity:mapping=diversity,scenario=uncorrelated"
        );
        // The classic mapping renders its own identity, so the pair of
        // cells in each scenario group never alias in the cache.
        let classic = CellKind::Diversity {
            mapping: "pgos".into(),
            scenario: "uncorrelated".into(),
        };
        assert_ne!(classic.canon(), s.kind.canon());
    }

    #[test]
    fn result_round_trips_through_json() {
        let mut r = CellResult::for_spec(&spec());
        r.metric("lemma1.observed", 0.991234567891234);
        r.metric("events", 1_234_567.0);
        r.verdict("lemma1.pass", true);
        r.verdict("lemma2.pass", false);
        let text = r.to_text();
        let back = CellResult::from_text(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_text(), text);
        assert!(!back.all_pass());
        assert_eq!(back.get("events"), Some(1_234_567.0));
    }
}
