//! Pre-refactor reference scheduler for the `sched_throughput` sweep.
//!
//! This module is a frozen, line-for-line port of the PGOS hot path as
//! it existed *before* the zero-alloc fast-path refactor: per-stream
//! `VecDeque` queues, per-window clone-and-collect cursor rebuilds, a
//! deep-cloned assignment matrix behind the scheduling vectors, and a
//! `pop_fallback` that scans every backlogged stream per decision while
//! allocating a fresh candidate vector each time. It exists for two
//! reasons:
//!
//! 1. **Speedup measurement** — the `sched_throughput` sweep drives the
//!    refactored [`iqpaths_core::scheduler::Pgos`] and this reference
//!    through the *same* synthetic workload in the same process, so the
//!    packets/sec ratio between them is a machine-independent measure of
//!    the refactor (both sides see the same CPU, cache and compiler).
//! 2. **Decision equivalence** — the refactor's contract is "same
//!    decisions, faster machinery". The sweep hashes the (stream, seq,
//!    deadline) decision sequence of both implementations over a common
//!    prefix and reports a mismatch as a failed cell verdict.
//!
//! Tracing, backoff and admission upcalls are omitted: the throughput
//! workload never blocks a path and never re-raises upcalls, so neither
//! side executes those branches, and leaving them out keeps the
//! reference small enough to audit against the git history by eye.

use iqpaths_core::guarantee;
use iqpaths_core::mapping::{MappingResult, ResourceMapper};
use iqpaths_core::precedence::{self, Candidate, ScheduleClass};
use iqpaths_core::queues::QueuedPacket;
use iqpaths_core::stream::StreamSpec;
use iqpaths_core::vectors::{path_lookup_vector, stream_scheduling_vector};
use iqpaths_stats::CdfSummary;
use std::collections::VecDeque;

/// The pre-refactor `StreamQueues`: one `VecDeque` per stream,
/// O(streams) `is_empty`/`total_len` scans, per-push heap traffic.
#[derive(Debug, Clone)]
pub struct RefQueues {
    queues: Vec<VecDeque<QueuedPacket>>,
    capacity: usize,
    offered: Vec<u64>,
    dropped: Vec<u64>,
    seq: Vec<u64>,
}

impl RefQueues {
    /// `streams` queues, each holding at most `capacity` packets.
    pub fn new(streams: usize, capacity: usize) -> Self {
        assert!(capacity > 0, "queues need positive capacity");
        Self {
            queues: (0..streams).map(|_| VecDeque::new()).collect(),
            capacity,
            offered: vec![0; streams],
            dropped: vec![0; streams],
            seq: vec![0; streams],
        }
    }

    /// Enqueues a packet; drop-tails (returns `false`) when full.
    pub fn push(&mut self, stream: usize, bytes: u32, created_ns: u64) -> bool {
        self.offered[stream] += 1;
        if self.queues[stream].len() >= self.capacity {
            self.dropped[stream] += 1;
            return false;
        }
        let seq = self.seq[stream];
        self.seq[stream] += 1;
        self.queues[stream].push_back(QueuedPacket {
            stream,
            seq,
            bytes,
            created_ns,
            deadline_ns: u64::MAX,
        });
        true
    }

    /// Head packet of a stream, if any.
    pub fn head(&self, stream: usize) -> Option<&QueuedPacket> {
        self.queues.get(stream).and_then(|q| q.front())
    }

    /// Pops the head packet of a stream.
    pub fn pop(&mut self, stream: usize) -> Option<QueuedPacket> {
        self.queues.get_mut(stream).and_then(|q| q.pop_front())
    }

    /// Queue length of a stream.
    pub fn len(&self, stream: usize) -> usize {
        self.queues.get(stream).map_or(0, VecDeque::len)
    }

    /// True when every queue is empty — the O(streams) scan the
    /// refactor replaced with a live counter.
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(VecDeque::is_empty)
    }

    /// Packets offered to a stream's queue so far.
    pub fn offered(&self, stream: usize) -> u64 {
        self.offered.get(stream).copied().unwrap_or(0)
    }

    /// Packets drop-tailed from a stream's queue so far.
    pub fn dropped(&self, stream: usize) -> u64 {
        self.dropped.get(stream).copied().unwrap_or(0)
    }

    /// Streams whose queues are non-empty.
    pub fn backlogged(&self) -> impl Iterator<Item = usize> + '_ {
        self.queues
            .iter()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, _)| i)
    }
}

/// The pre-refactor `VsCursor`: owns its vector clone.
#[derive(Debug, Clone)]
struct RefCursor {
    vs: Vec<usize>,
    pos: usize,
    remaining: Vec<u32>,
}

impl RefCursor {
    fn new(vs: Vec<usize>, remaining: Vec<u32>) -> Self {
        Self {
            vs,
            pos: 0,
            remaining,
        }
    }

    fn remaining(&self, stream: usize) -> u32 {
        self.remaining.get(stream).copied().unwrap_or(0)
    }

    fn next_scheduled<F: Fn(usize) -> bool>(&mut self, has_packet: F) -> Option<usize> {
        if self.vs.is_empty() {
            return None;
        }
        for _ in 0..self.vs.len() {
            let stream = self.vs[self.pos];
            self.pos = (self.pos + 1) % self.vs.len();
            if self.remaining[stream] > 0 && has_packet(stream) {
                self.remaining[stream] -= 1;
                return Some(stream);
            }
        }
        None
    }
}

/// Pre-refactor scheduling vectors: a deep-cloned assignment matrix
/// plus per-call row/column sums.
#[derive(Debug, Clone)]
struct RefVectors {
    assignments: Vec<Vec<u32>>,
    vs: Vec<Vec<usize>>,
}

impl RefVectors {
    fn build(assignments: Vec<Vec<u32>>) -> Self {
        let paths = assignments.first().map_or(0, Vec::len);
        let per_path: Vec<u32> = (0..paths)
            .map(|j| assignments.iter().map(|row| row[j]).sum())
            .collect();
        // VP is derived for cost parity even though the bench loop
        // visits paths round-robin (exactly like the refactored side).
        let _vp = path_lookup_vector(&per_path);
        let vs = (0..paths)
            .map(|j| {
                let per_stream: Vec<u32> = assignments.iter().map(|row| row[j]).collect();
                stream_scheduling_vector(&per_stream)
            })
            .collect();
        Self { assignments, vs }
    }

    fn packets_of_stream(&self, i: usize) -> u32 {
        self.assignments[i].iter().sum()
    }
}

/// The pre-refactor PGOS decision core (no tracing, no backoff).
#[derive(Debug, Clone)]
pub struct RefPgos {
    window_secs: f64,
    specs: Vec<StreamSpec>,
    mapper: ResourceMapper,
    paths: usize,
    mapping: Option<MappingResult>,
    vectors: Option<RefVectors>,
    cursors: Vec<RefCursor>,
    reference_cdfs: Vec<CdfSummary>,
    path_loss: Vec<f64>,
    window_start_ns: u64,
    window_ns: u64,
    window_sent: Vec<u32>,
    remap_ks_threshold: f64,
}

impl RefPgos {
    /// A reference instance scheduling `specs` over `paths` paths with a
    /// `window_secs` scheduling window.
    pub fn new(window_secs: f64, specs: Vec<StreamSpec>, paths: usize) -> Self {
        assert!(paths > 0, "need at least one path");
        let n = specs.len();
        Self {
            mapper: ResourceMapper::new(window_secs),
            window_secs,
            specs,
            paths,
            mapping: None,
            vectors: None,
            cursors: Vec::new(),
            reference_cdfs: Vec::new(),
            path_loss: vec![0.0; paths],
            window_start_ns: 0,
            window_ns: 0,
            window_sent: vec![0; n],
            remap_ks_threshold: 0.2,
        }
    }

    fn needs_remap(&self, cdfs: &[CdfSummary]) -> bool {
        let Some(mapping) = &self.mapping else {
            return true;
        };
        if !mapping.upcalls.is_empty() {
            return true;
        }
        if self.reference_cdfs.len() != cdfs.len() {
            return true;
        }
        for (r, c) in self.reference_cdfs.iter().zip(cdfs) {
            if r.ks_distance(c) > self.remap_ks_threshold {
                return true;
            }
        }
        !guarantee::mapping_is_feasible(cdfs, &self.specs, &mapping.rates, self.window_secs)
    }

    fn remap(&mut self, cdfs: &[CdfSummary]) {
        let affinity: Vec<Option<usize>> = match &self.mapping {
            None => vec![None; self.specs.len()],
            Some(m) => m
                .rates
                .iter()
                .map(|row| {
                    row.iter()
                        .enumerate()
                        .filter(|(_, r)| **r > 0.0)
                        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite rates"))
                        .map(|(j, _)| j)
                })
                .collect(),
        };
        let mapping =
            self.mapper
                .map_full(&self.specs, cdfs, Some(&affinity), Some(&self.path_loss));
        // Pre-refactor cost: the assignment matrix existed twice, once
        // behind the vectors and once on the mapping.
        self.vectors = Some(RefVectors::build(mapping.assignments.to_vec()));
        self.mapping = Some(mapping);
        self.reference_cdfs = cdfs.to_vec();
    }

    fn rebuild_cursors(&mut self) {
        let Some(vectors) = &self.vectors else {
            self.cursors.clear();
            return;
        };
        self.cursors = (0..self.paths)
            .map(|j| {
                let per_stream: Vec<u32> = vectors.assignments.iter().map(|row| row[j]).collect();
                RefCursor::new(vectors.vs[j].clone(), per_stream)
            })
            .collect();
    }

    /// Per-window bookkeeping: fresh CDFs, remap when needed, rebuild
    /// cursors, zero the sent counters.
    pub fn on_window_start(&mut self, window_start_ns: u64, window_ns: u64, cdfs: &[CdfSummary]) {
        assert_eq!(cdfs.len(), self.paths, "path count changed mid-run");
        self.window_start_ns = window_start_ns;
        self.window_ns = window_ns;
        if self.needs_remap(cdfs) {
            self.remap(cdfs);
        }
        self.rebuild_cursors();
        self.window_sent.iter_mut().for_each(|c| *c = 0);
    }

    fn scheduled_total(&self, stream: usize) -> u32 {
        self.vectors
            .as_ref()
            .map_or(0, |v| v.packets_of_stream(stream))
    }

    fn stamp_deadline(&mut self, stream: usize) -> u64 {
        let x = self.scheduled_total(stream).max(1);
        let k = (self.window_sent[stream] + 1).min(x);
        self.window_sent[stream] += 1;
        self.window_start_ns + (self.window_ns as f64 * k as f64 / x as f64) as u64
    }

    fn pop_scheduled(&mut self, stream: usize, queues: &mut RefQueues) -> Option<QueuedPacket> {
        let mut pkt = queues.pop(stream)?;
        pkt.deadline_ns = self.stamp_deadline(stream);
        Some(pkt)
    }

    fn behind_schedule(&self, s: usize, now_ns: u64) -> bool {
        let x = self.scheduled_total(s);
        if x == 0 || self.window_ns == 0 {
            return false;
        }
        let frac = (now_ns.saturating_sub(self.window_start_ns)) as f64 / self.window_ns as f64;
        let expected = frac * x as f64;
        let slack = (x as f64 / 10.0).max(1.0);
        (self.window_sent[s] as f64) + slack < expected
    }

    fn pop_fallback(
        &mut self,
        path: usize,
        now_ns: u64,
        queues: &mut RefQueues,
    ) -> Option<QueuedPacket> {
        let tw = self.window_secs;
        let mut candidates = Vec::new();
        let backlogged: Vec<usize> = queues.backlogged().collect();
        for s in backlogged {
            let head = queues.head(s).expect("backlogged stream has a head");
            let other_budget: u32 = self
                .cursors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != path)
                .map(|(_, c)| c.remaining(s))
                .sum();
            if other_budget > 0 && !self.behind_schedule(s, now_ns) {
                continue;
            }
            let class = if other_budget > 0 {
                ScheduleClass::OtherPath
            } else {
                ScheduleClass::Unscheduled
            };
            let deadline_ns = if class == ScheduleClass::OtherPath {
                let x = self.scheduled_total(s).max(1);
                let k = (self.window_sent[s] + 1).min(x);
                self.window_start_ns + (self.window_ns as f64 * k as f64 / x as f64) as u64
            } else {
                head.deadline_ns
            };
            candidates.push(Candidate {
                stream: s,
                class,
                deadline_ns,
                constraint: self.specs[s].window_constraint(tw).ratio(),
            });
        }
        let winner = precedence::best(&candidates)?;
        match winner.class {
            ScheduleClass::OtherPath => {
                let stream = winner.stream;
                if let Some((_, cursor)) = self
                    .cursors
                    .iter_mut()
                    .enumerate()
                    .filter(|(j, c)| *j != path && c.remaining(stream) > 0)
                    .max_by_key(|(_, c)| c.remaining(stream))
                {
                    let _ = cursor.next_scheduled(|s| s == stream);
                }
                self.pop_scheduled(stream, queues)
            }
            _ => {
                let stream = winner.stream;
                let mut pkt = queues.pop(stream)?;
                if !self.specs[stream].guarantee.is_best_effort() {
                    pkt.deadline_ns = self.window_start_ns + self.window_ns;
                }
                Some(pkt)
            }
        }
    }

    /// The pre-refactor decision: Table 1 rule 1 via the path's cursor,
    /// then the scan-everything fallback.
    pub fn next_packet(
        &mut self,
        path: usize,
        now_ns: u64,
        queues: &mut RefQueues,
    ) -> Option<QueuedPacket> {
        if let Some(cursor) = self.cursors.get_mut(path) {
            if let Some(stream) = cursor.next_scheduled(|s| queues.len(s) > 0) {
                return self.pop_scheduled(stream, queues);
            }
        }
        self.pop_fallback(path, now_ns, queues)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iqpaths_stats::EmpiricalCdf;

    fn cdf(lo: u32, hi: u32) -> CdfSummary {
        CdfSummary::exact(EmpiricalCdf::from_clean_samples(
            (lo..=hi).map(|i| i as f64 * 1.0e6).collect(),
        ))
    }

    #[test]
    fn reference_matches_known_pgos_behaviour() {
        // Mirror of scheduler.rs's `deadlines_are_evenly_spaced`: 8 Mbps
        // at 1000-byte packets over a 1 s window → 1 ms deadline spacing
        // on the strong path.
        let specs = vec![
            StreamSpec::probabilistic(0, "crit", 8.0e6, 0.95, 1000),
            StreamSpec::best_effort(1, "bulk", 20.0e6, 1000),
        ];
        let mut pgos = RefPgos::new(1.0, specs, 2);
        let mut q = RefQueues::new(2, 100_000);
        for _ in 0..2000 {
            q.push(0, 1000, 0);
        }
        pgos.on_window_start(0, 1_000_000_000, &[cdf(50, 100), cdf(10, 60)]);
        let d1 = pgos.next_packet(0, 1, &mut q).unwrap().deadline_ns;
        let d2 = pgos.next_packet(0, 2, &mut q).unwrap().deadline_ns;
        assert!(d1 < d2);
        assert_eq!(d2 - d1, 1_000_000);
    }

    #[test]
    fn fallback_serves_best_effort_after_budget() {
        let specs = vec![
            StreamSpec::probabilistic(0, "crit", 8.0e6, 0.95, 1000),
            StreamSpec::best_effort(1, "bulk", 20.0e6, 1000),
        ];
        let mut pgos = RefPgos::new(1.0, specs, 2);
        let mut q = RefQueues::new(2, 100_000);
        for _ in 0..10 {
            q.push(1, 1000, 0);
        }
        pgos.on_window_start(0, 1_000_000_000, &[cdf(50, 100), cdf(10, 60)]);
        let pkt = pgos.next_packet(0, 1, &mut q).unwrap();
        assert_eq!(pkt.stream, 1);
        assert!(!q.is_empty());
    }
}
