//! # IQ-Paths — facade crate
//!
//! Reproduction of *"IQ-Paths: Predictably High Performance Data Streams
//! across Dynamic Network Overlays"* (Cai, Kumar, Schwan — HPDC 2006).
//!
//! This crate re-exports the whole workspace; see `DESIGN.md` for the
//! crate inventory and `EXPERIMENTS.md` for the reproduced evaluation.

pub use iqpaths_apps as apps;
pub use iqpaths_baselines as baselines;
pub use iqpaths_core as pgos;
pub use iqpaths_harness as harness;
pub use iqpaths_middleware as middleware;
pub use iqpaths_overlay as overlay;
pub use iqpaths_simnet as simnet;
pub use iqpaths_stats as stats;
pub use iqpaths_traces as traces;
pub use iqpaths_transport as transport;

/// Section-by-section map from the paper to this implementation.
///
/// | Paper | Here |
/// |---|---|
/// | §1 overlay of servers/routers/clients (Fig 1) | [`overlay::graph`], [`simnet::topology`] |
/// | §3 middleware architecture (Fig 2) | [`middleware`] (runtime), [`transport`] (IQ-RUDP), [`middleware::pubsub`] (ECho layering) |
/// | §3 overlay node structure (Fig 3) | [`overlay::node::MonitoringModule`] ⇄ [`pgos::scheduler::Pgos`] |
/// | §4 statistical bandwidth prediction (Fig 4) | [`stats::percentile`], [`stats::predictors`]; sweep `fig04_prediction` ([`harness::sweeps`]) |
/// | §5.1 streams, window constraints, `F_j(b)` | [`pgos::stream`], [`stats::cdf`] |
/// | §5.2.1 Lemma 1 / Lemma 2 | [`pgos::guarantee`] |
/// | §5.2.2 resource mapping, upcalls | [`pgos::mapping`] |
/// | §5.2.2 scheduling vectors `VP`/`VS` (worked example) | [`pgos::vectors`] |
/// | Table 1 precedence | [`pgos::precedence`] |
/// | §5.2.2 blocked paths, timeouts + backoff | [`pgos::scheduler`] (`on_path_blocked`) |
/// | §6 Emulab testbed (Fig 8) | [`simnet::topology::emulab_testbed`], [`traces::nlanr`] |
/// | §6.1 SmartPointer (Figs 9–11) | [`apps::smartpointer`]; harnesses `fig09/10/11` |
/// | §6.1 baselines WFQ/MSFQ/OptSched | [`baselines`] |
/// | §6.2 GridFTP layouts (Figs 12–13) | [`apps::gridftp`], [`baselines::layouts`]; harnesses `fig12/13` |
/// | tech-report MPEG-4 FGS | [`apps::mpeg4`]; harness `ext_mpeg4_video` |
/// | tech-report buffer-size analysis | `FrameTracker::startup_delay`; ablation `abl-buffer` |
/// | §7 loss-rate objectives | `StreamSpec::with_loss_bound`, goodput-scaled CDFs in [`middleware::runtime`] |
/// | §7 overlay multicast | [`middleware::multicast`] |
/// | DWCS heritage (the paper's ref. 31) | [`baselines::dwcs`] |
pub mod paper_map {}

/// Commonly used types for quick starts.
pub mod prelude {
    pub use iqpaths_apps::workload::{FramedSource, Workload};
    pub use iqpaths_core::scheduler::{Pgos, PgosConfig};
    pub use iqpaths_core::stream::{Guarantee, StreamSpec};
    pub use iqpaths_core::traits::MultipathScheduler;
    pub use iqpaths_middleware::builder::{Figure8Experiment, SchedulerKind};
    pub use iqpaths_middleware::runtime::{run, RuntimeConfig};
    pub use iqpaths_overlay::path::OverlayPath;
    pub use iqpaths_stats::{BandwidthCdf, EmpiricalCdf, PercentilePredictor};
}
