//! Overlay multicast content delivery (the §7 future-work extension):
//! one 20 Mbps feed, guaranteed on the trunk by PGOS, replicated at an
//! overlay router to three subscribers with very different last-mile
//! paths.
//!
//! ```sh
//! cargo run --release --example multicast_delivery
//! ```

use iq_paths::apps::workload::FramedSource;
use iq_paths::middleware::multicast::run_multicast;
use iq_paths::middleware::runtime::RuntimeConfig;
use iq_paths::overlay::path::OverlayPath;
use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
use iq_paths::pgos::stream::StreamSpec;
use iq_paths::simnet::link::Link;
use iq_paths::simnet::time::SimDuration;
use iq_paths::traces::nlanr::{nlanr_like, NlanrLikeConfig};

fn path(index: usize, util: f64, seed: u64, horizon: f64) -> OverlayPath {
    let mut link = Link::new(format!("l{index}"), 100.0e6, SimDuration::from_millis(2));
    if util > 0.0 {
        let cross = nlanr_like(
            &NlanrLikeConfig {
                mean_utilization: util,
                ..Default::default()
            },
            0.1,
            horizon,
            seed,
        );
        link = link.with_cross_traffic(cross);
    }
    OverlayPath::new(index, format!("p{index}"), vec![link])
}

fn main() {
    let duration = 40.0;
    let cfg = RuntimeConfig {
        warmup_secs: 20.0,
        ..Default::default()
    };
    let horizon = cfg.warmup_secs + duration + 5.0;

    let trunks = vec![path(0, 0.3, 1, horizon), path(1, 0.5, 2, horizon)];
    // The DSL subscriber's last mile is a 12 Mbps link — physically
    // unable to carry the 20 Mbps feed.
    let dsl = OverlayPath::new(
        2,
        "dsl",
        vec![Link::new("dsl", 12.0e6, SimDuration::from_millis(15))],
    );
    let clients = vec![
        ("campus".to_string(), path(0, 0.1, 3, horizon)),
        ("home-fiber".to_string(), path(1, 0.5, 4, horizon)),
        ("narrow-dsl".to_string(), dsl),
    ];

    let rate = 20.0e6;
    let specs = vec![StreamSpec::probabilistic(0, "feed", rate, 0.95, 1250)];
    let frame = (rate / (8.0 * 25.0)) as u32;
    let workload = FramedSource::new(specs.clone(), vec![frame], 25.0, duration);
    let scheduler = Pgos::new(PgosConfig::default(), specs, trunks.len());

    let report = run_multicast(
        &trunks,
        &clients,
        Box::new(workload),
        Box::new(scheduler),
        cfg,
        duration,
    );

    println!(
        "multicast feed: 20 Mbps @ 95% over {} trunk paths\n",
        trunks.len()
    );
    for c in &report.clients {
        println!(
            "{:<14} mean {:>6.2} Mbps  meets-target {:>5.1}%  router drops {}",
            c.name,
            c.mean_throughput(0) / 1e6,
            c.meet_fraction(0, rate * 0.99) * 100.0,
            c.router_drops
        );
    }
    println!(
        "\nthe narrow subscriber sheds at its own router queue; the trunk \
         guarantee and the other subscribers are unaffected."
    );
}
