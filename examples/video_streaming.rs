//! MPEG-4 fine-grained-scalable layered video over IQ-Paths (the
//! technical-report extension experiment referenced in §1/§6): a base
//! layer with a 99% guarantee, mid layers with weaker guarantees, and a
//! best-effort top enhancement layer.
//!
//! ```sh
//! cargo run --release --example video_streaming
//! ```

use iq_paths::apps::mpeg4::Mpeg4Config;
use iq_paths::middleware::builder::{Figure8Experiment, SchedulerKind};

fn main() {
    let experiment = Figure8Experiment::new(42, 60.0);
    let cfg = Mpeg4Config {
        layer_rates: vec![2.0e6, 8.0e6, 30.0e6, 50.0e6],
        layer_guarantees: vec![Some(0.99), Some(0.95), Some(0.9), None],
        ..Default::default()
    };

    for kind in [SchedulerKind::Msfq, SchedulerKind::Pgos] {
        let out = experiment.run_mpeg4(cfg.clone(), kind);
        println!("== {} ==", out.report.scheduler);
        print!("{}", out.report.summary_table());
        println!(
            "mean frame quality {:.2} layers, playable frames {:.1}%\n",
            out.mean_quality,
            out.playable_fraction * 100.0
        );
    }
    println!(
        "With PGOS the guaranteed layers ride the stable path budget and the \
         best-effort enhancement layer absorbs all congestion."
    );
}
