//! The paper's SmartPointer scenario (§6.1): molecular-dynamics remote
//! visualization with two critical streams (Atom @ 3.249 Mbps, Bond1 @
//! 22.148 Mbps, both 95% guarantees) and a best-effort Bond2 stream,
//! run over the Figure 8 Emulab testbed under PGOS vs MSFQ.
//!
//! ```sh
//! cargo run --release --example smartpointer
//! ```

use iq_paths::apps::smartpointer::SmartPointerConfig;
use iq_paths::middleware::builder::{Figure8Experiment, SchedulerKind};

fn main() {
    let experiment = Figure8Experiment::new(42, 60.0);
    let app = SmartPointerConfig::default();

    for kind in [SchedulerKind::Msfq, SchedulerKind::Pgos] {
        let out = experiment.run_smartpointer(app, kind);
        println!("== {} ==", out.report.scheduler);
        print!("{}", out.report.summary_table());
        println!(
            "frame jitter: Atom {:.2} ms, Bond1 {:.2} ms ({} / {} frames completed)\n",
            out.frame_jitter[0] * 1e3,
            out.frame_jitter[1] * 1e3,
            out.frames_completed[0],
            out.frames_completed[1],
        );
    }
    println!(
        "PGOS holds both critical streams at their targets in every window and \
         lowers frame jitter, without reducing Bond2's mean throughput."
    );
}
