//! The SmartPointer scenario expressed through the pub/sub layer: a
//! molecular-dynamics channel publishes per-timestep events; three
//! subscriptions with different utility lower onto IQ-Paths streams
//! (IQ-ECho's "derived channel" abstraction filters the out-of-view
//! bonds into a best-effort stream).
//!
//! ```sh
//! cargo run --release --example pubsub_collaboration
//! ```

use iq_paths::middleware::pubsub::{Event, PubSubSystem, Subscription};
use iq_paths::middleware::runtime::{run, RuntimeConfig};
use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
use iq_paths::pgos::stream::Guarantee;

const ATOM_TAG: u32 = 0;
const BOND_IN_VIEW: u32 = 1;
const BOND_OUT_VIEW: u32 = 2;

fn main() {
    let duration = 40.0;
    let fps = 25.0;

    // The MD code publishes one event per data component per timestep.
    let mut schedule = Vec::new();
    for k in 0..(duration * fps) as u64 {
        let at = k as f64 / fps;
        schedule.push(Event {
            at,
            bytes: 16_245,
            tag: ATOM_TAG,
        });
        schedule.push(Event {
            at,
            bytes: 110_740,
            tag: BOND_IN_VIEW,
        });
        schedule.push(Event {
            at,
            bytes: 350_000,
            tag: BOND_OUT_VIEW,
        });
    }

    let mut ps = PubSubSystem::new();
    let md = ps.channel(schedule);
    ps.subscribe(
        Subscription::full(
            md,
            "atoms",
            Guarantee::Probabilistic { p: 0.95 },
            3.249e6,
            1250,
        )
        .derived(|e| e.tag == ATOM_TAG),
    );
    ps.subscribe(
        Subscription::full(
            md,
            "bonds-view",
            Guarantee::Probabilistic { p: 0.95 },
            22.148e6,
            1250,
        )
        .derived(|e| e.tag == BOND_IN_VIEW),
    );
    // Out-of-view bonds ride best-effort, downsampled in flight to 50%.
    ps.subscribe(
        Subscription::full(md, "bonds-rest", Guarantee::BestEffort, 0.0, 1250)
            .derived(|e| e.tag == BOND_OUT_VIEW)
            .transformed(0.5),
    );

    let specs = ps.stream_specs();
    let workload = ps.into_workload();

    // Reuse the Figure 8 testbed paths.
    let experiment = iq_paths::middleware::builder::Figure8Experiment::new(42, duration);
    let paths = experiment.paths();
    let scheduler = Pgos::new(PgosConfig::default(), specs, paths.len());
    let cfg = RuntimeConfig {
        warmup_secs: 20.0,
        ..Default::default()
    };
    let report = run(
        &paths,
        Box::new(workload),
        Box::new(scheduler),
        cfg,
        duration,
    );
    println!("pub/sub over IQ-Paths — {}", report.scheduler);
    print!("{}", report.summary_table());
    println!(
        "derived channel delivered {:.1} Mbps of downsampled out-of-view bonds \
         without disturbing the guaranteed subscriptions.",
        report.streams[2].mean_throughput() / 1e6
    );
}
