//! The paper's GridFTP scenario (§6.2): parallel transfer of climate
//! records (DT1 numeric / DT2 low-res / DT3 high-res) over two overlay
//! paths; DT1 and DT2 need 25 records/s, DT3 moves as fast as possible.
//!
//! ```sh
//! cargo run --release --example gridftp_transfer
//! ```

use iq_paths::apps::gridftp::GridFtpConfig;
use iq_paths::middleware::builder::{Figure8Experiment, SchedulerKind};

fn main() {
    let experiment = Figure8Experiment::new(42, 60.0);
    let app = GridFtpConfig::default();

    for (label, kind) in [
        (
            "standard GridFTP (blocked layout)",
            SchedulerKind::GridFtpBlocked,
        ),
        ("IQPG-GridFTP (PGOS layout)", SchedulerKind::Pgos),
    ] {
        let out = experiment.run_gridftp(app, kind);
        println!("== {label} ==");
        print!("{}", out.report.summary_table());
        println!(
            "records/s: DT1 {:.1}  DT2 {:.1}  DT3 {:.1}  (DT1/DT2 SLO: 25.0)\n",
            out.records_per_sec[0], out.records_per_sec[1], out.records_per_sec[2]
        );
    }
    println!(
        "IQPG-GridFTP protects DT1/DT2 from competing with the bulk DT3 stream; \
         standard GridFTP lets all record types fight for the same bandwidth."
    );
}
