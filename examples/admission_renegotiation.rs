//! Admission control and renegotiation (§5.2.2): "If this still fails
//! due to limited bandwidth, an upcall is made to inform the
//! application that it is not possible to schedule this particular
//! stream. The application can reduce its bandwidth requirement (e.g.,
//! from 95% to 90%) or try to adjust its behavior to the limited
//! available bandwidth."
//!
//! ```sh
//! cargo run --release --example admission_renegotiation
//! ```

use iq_paths::pgos::mapping::Upcall;
use iq_paths::prelude::*;

fn attempt(req_mbps: f64, p: f64) -> (iq_paths::middleware::report::RunReport, f64, f64) {
    let duration = 60.0;
    let experiment = Figure8Experiment::new(42, duration);
    let paths = experiment.paths();
    let specs = vec![StreamSpec::probabilistic(
        0,
        "bulk-viz",
        req_mbps * 1.0e6,
        p,
        1250,
    )];
    let frame = (req_mbps * 1.0e6 / (8.0 * 25.0)).round() as u32;
    let workload = FramedSource::new(specs.clone(), vec![frame], 25.0, duration);
    let scheduler = Pgos::new(PgosConfig::default(), specs, paths.len());
    let cfg = RuntimeConfig {
        warmup_secs: 20.0,
        ..Default::default()
    };
    let report = run(
        &paths,
        Box::new(workload),
        Box::new(scheduler),
        cfg,
        duration,
    );
    (report, req_mbps, p)
}

fn main() {
    // The application first asks for far more than the testbed's two
    // paths can jointly promise at 95%.
    let mut req = 120.0;
    let mut p = 0.95;
    for round in 1..=4 {
        let (report, r, pr) = attempt(req, p);
        println!("round {round}: request {r:.0} Mbps @ p={pr}");
        match report.upcalls.first() {
            None => {
                let s = report.streams[0].summary();
                // Count windows at ≥ 99% of target: report windows are
                // not phase-aligned with the scheduler, so a packet
                // straddling a boundary shaves <1% off a window.
                let target = report.streams[0].required_bw * 0.99;
                let series = &report.streams[0].throughput_series;
                let meet =
                    series.iter().filter(|&&v| v >= target).count() as f64 / series.len() as f64;
                println!(
                    "  admitted ✓ — delivered {:.1} Mbps mean, ≥99% of target in {:.1}% of windows",
                    s.mean / 1e6,
                    meet * 100.0
                );
                return;
            }
            Some(Upcall::StreamRejected {
                achievable_p,
                admissible_bps,
                ..
            }) => {
                println!(
                    "  rejected ✗ — best single-path probability {:.3}, \
                     {:.1} Mbps admissible across all paths at p={pr}",
                    achievable_p,
                    admissible_bps / 1e6
                );
                // Renegotiate like the paper suggests: first relax the
                // probability, then shrink the demand toward what the
                // upcall said was admissible.
                if p > 0.9 {
                    p = 0.90;
                } else {
                    // Leave headroom below the instantaneous admissible
                    // total: it was measured against one CDF snapshot and
                    // the network keeps drifting.
                    req = (admissible_bps / 1e6 * 0.7).max(10.0);
                }
            }
        }
    }
    println!("never admitted — testbed unusually congested for this seed");
}
