//! Quickstart: give one critical stream a 95% bandwidth guarantee over
//! two lossy overlay paths.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use iq_paths::middleware::runtime::{run, RuntimeConfig};
use iq_paths::overlay::path::OverlayPath;
use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
use iq_paths::pgos::stream::StreamSpec;
use iq_paths::simnet::link::Link;
use iq_paths::simnet::time::SimDuration;
use iq_paths::traces::nlanr::{nlanr_like, NlanrLikeConfig};

fn main() {
    // Two 100 Mbps paths carrying synthetic NLANR-like cross traffic.
    let horizon = 120.0;
    let mk_path = |index: usize, util: f64, seed: u64| {
        let cross = nlanr_like(
            &NlanrLikeConfig {
                mean_utilization: util,
                ..Default::default()
            },
            0.1,
            horizon,
            seed,
        );
        let link = Link::new(
            format!("bottleneck-{index}"),
            100.0e6,
            SimDuration::from_millis(5),
        )
        .with_cross_traffic(cross);
        OverlayPath::new(index, format!("path-{index}"), vec![link])
    };
    let paths = vec![mk_path(0, 0.4, 7), mk_path(1, 0.6, 8)];

    // One stream: 20 Mbps, guaranteed 95% of the time; packets of 1250 B.
    let specs = vec![StreamSpec::probabilistic(
        0,
        "telemetry",
        20.0e6,
        0.95,
        1250,
    )];

    // Offer the stream at exactly its required rate, framed at 25 fps.
    let workload = iq_paths::apps::workload::FramedSource::new(
        specs.clone(),
        vec![(20.0e6 / (8.0 * 25.0)) as u32],
        25.0,
        60.0,
    );

    let scheduler = Pgos::new(PgosConfig::default(), specs, paths.len());
    let cfg = RuntimeConfig {
        warmup_secs: 20.0,
        ..Default::default()
    };
    let report = run(&paths, Box::new(workload), Box::new(scheduler), cfg, 60.0);

    println!("scheduler: {}", report.scheduler);
    println!("{}", report.summary_table());
    let s = &report.streams[0];
    println!(
        "telemetry received ≥ {:.2} Mbps during 95% of one-second windows \
         (target 20.00 Mbps), mean latency {:.2} ms, {} upcalls",
        s.attained(0.95) / 1e6,
        s.mean_latency * 1e3,
        report.upcalls.len()
    );
}
