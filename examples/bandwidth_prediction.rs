//! Statistical vs mean bandwidth prediction (§4 / Figure 4) on a
//! synthetic wide-area available-bandwidth trace.
//!
//! ```sh
//! cargo run --release --example bandwidth_prediction
//! ```

use iq_paths::prelude::*;
use iq_paths::stats::percentile::{evaluate_mean_prediction, evaluate_percentile_prediction};
use iq_paths::stats::predictors::standard_suite;
use iq_paths::traces::envelope::{available_bandwidth, EnvelopeConfig};

fn main() {
    // A 2000-second available-bandwidth trace sampled every 0.1 s.
    let trace = available_bandwidth(&EnvelopeConfig::default(), 0.1, 2000.0, 7);
    let series: Vec<f64> = trace.rates().to_vec();

    println!("mean predictors (relative error |pred − actual| / actual):");
    for predictor in &mut standard_suite(32) {
        let err = evaluate_mean_prediction(&series, predictor.as_mut());
        println!("  {:<5} {:>6.1}%", predictor.name(), err * 100.0);
    }

    let report = evaluate_percentile_prediction(&series, 500, 5, 0.9);
    println!(
        "\npercentile predictor (10th-percentile floor, 5-sample horizon): \
         {} predictions, {:.2}% failures",
        report.predictions,
        report.failure_rate() * 100.0
    );

    // The online predictor object, as the monitoring module uses it.
    let mut online = PercentilePredictor::new(500, 0.9);
    for (i, &bw) in series.iter().enumerate().take(600) {
        online.observe(i as f64 * 0.1, bw);
    }
    let floor = online.floor().expect("warmed up");
    println!(
        "online floor after 600 samples: {:.1} Mbps — \"with probability ≥ 0.9 \
         the next interval provides at least this bandwidth\"",
        floor / 1e6
    );
}
