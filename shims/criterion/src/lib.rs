//! Offline stand-in for `criterion`.
//!
//! Covers the API subset the bench targets use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::{iter, iter_batched,
//! iter_batched_ref}`, `Throughput`, `BatchSize`, the `criterion_group!`
//! / `criterion_main!` macros) with a small adaptive wall-clock harness:
//! each benchmark is warmed up, then timed over enough iterations to
//! fill a target budget, and the mean ns/iter is printed. No statistics
//! machinery, no HTML reports — but the numbers are stable enough to
//! compare implementations within this repo (see EXPERIMENTS.md).
//!
//! Env knobs: `IQP_BENCH_MS` — per-benchmark measurement budget in
//! milliseconds (default 60). Passing `--test` on the command line (as
//! `cargo test --benches` does) runs every routine once and skips
//! timing.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion-compatible name).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

impl BatchSize {
    fn inputs_per_batch(self) -> usize {
        match self {
            BatchSize::SmallInput => 64,
            BatchSize::LargeInput => 8,
            BatchSize::PerIteration => 1,
        }
    }
}

/// Collects one benchmark's measurement; handed to the user closure.
pub struct Bencher {
    budget: Duration,
    smoke_only: bool,
    total: Duration,
    iters: u64,
}

impl Bencher {
    fn new(budget: Duration, smoke_only: bool) -> Self {
        Self {
            budget,
            smoke_only,
            total: Duration::ZERO,
            iters: 0,
        }
    }

    fn record(&mut self, elapsed: Duration, iters: u64) {
        self.total += elapsed;
        self.iters += iters;
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.total.as_nanos() as f64 / self.iters as f64
    }

    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            black_box(routine());
            self.record(Duration::from_nanos(1), 1);
            return;
        }
        // Warmup + calibration: grow the batch until it is measurable.
        let mut batch: u64 = 1;
        let per_call = loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt > Duration::from_micros(200) {
                break dt.as_secs_f64() / batch as f64;
            }
            batch = batch.saturating_mul(8);
        };
        let goal = (self.budget.as_secs_f64() / per_call.max(1e-9)) as u64;
        let goal = goal.clamp(1, 1_000_000_000);
        let t0 = Instant::now();
        for _ in 0..goal {
            black_box(routine());
        }
        self.record(t0.elapsed(), goal);
    }

    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.smoke_only {
            black_box(routine(setup()));
            self.record(Duration::from_nanos(1), 1);
            return;
        }
        let per_batch = size.inputs_per_batch();
        let deadline = Instant::now() + self.budget;
        let mut warm = true;
        let mut recorded = false;
        loop {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let dt = t0.elapsed();
            if warm {
                warm = false; // first batch is warmup, unrecorded
            } else {
                self.record(dt, per_batch as u64);
                recorded = true;
            }
            // Even past the deadline, keep going until one measured
            // batch exists (expensive setups would otherwise yield NaN).
            if recorded && Instant::now() >= deadline {
                break;
            }
        }
    }

    pub fn iter_batched_ref<I, O, S, R>(&mut self, setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(setup, move |mut input| routine(&mut input), size)
    }
}

fn env_budget() -> Duration {
    let ms = std::env::var("IQP_BENCH_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(60);
    Duration::from_millis(ms.max(1))
}

fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Top-level harness handle (one per bench binary).
pub struct Criterion {
    budget: Duration,
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: env_budget(),
            smoke_only: smoke_mode(),
        }
    }
}

fn run_one(
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    budget: Duration,
    smoke_only: bool,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher::new(budget, smoke_only);
    f(&mut b);
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if smoke_only {
        println!("bench {full:<48} ok (smoke)");
        return;
    }
    let ns = b.ns_per_iter();
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" ({:.2} Melem/s)", n as f64 / ns * 1e3),
        Throughput::Bytes(n) => format!(" ({:.2} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64),
    });
    println!(
        "bench {full:<48} {ns:>12.1} ns/iter{}",
        rate.unwrap_or_default()
    );
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            None,
            id.as_ref(),
            None,
            self.budget,
            self.smoke_only,
            &mut f,
        );
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            Some(&self.name),
            id.as_ref(),
            self.throughput,
            self.criterion.budget,
            self.criterion.smoke_only,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        std::env::set_var("IQP_BENCH_MS", "5");
        let mut b = Bencher::new(Duration::from_millis(5), false);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(black_box(3));
            x
        });
        assert!(b.iters > 0);
        assert!(b.ns_per_iter().is_finite());
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(5), false);
        b.iter_batched(
            || vec![1u64; 64],
            |v| v.iter().sum::<u64>(),
            BatchSize::SmallInput,
        );
        assert!(b.iters > 0);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut b = Bencher::new(Duration::from_millis(1000), true);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }
}
