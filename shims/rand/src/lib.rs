//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored crates,
//! so the workspace replaces `rand` with this path dependency (see
//! `[workspace.dependencies]`). It implements exactly the API subset
//! IQ-Paths uses — `StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::{gen_bool, gen_range}` over `f64`/integer ranges — with a
//! deterministic xoshiro256** generator. Stream values differ from the
//! real `rand` crate, but every experiment in this repo only requires
//! *reproducibility* (identical seed → identical run), not a specific
//! bit stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing random-value API.
pub trait Rng {
    /// The next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.next_f64() < p
    }

    /// A uniform sample from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

/// Ranges that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "empty range");
        let u = rng.next_f64();
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // Scale the half-open unit draw onto the closed interval; the
        // endpoint bias is one ulp and irrelevant for measurements.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_ranges!(u8, u16, u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's
    /// `StdRng`; the stream differs but determinism is preserved).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let y: f64 = rng.gen_range(0.5..=0.75);
            assert!((0.5..=0.75).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(0..=10u64);
            assert!(x <= 10);
            let y: u32 = rng.gen_range(5..9u32);
            assert!((5..9).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
