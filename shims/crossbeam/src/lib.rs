//! Offline stand-in for `crossbeam`, covering only `thread::scope` /
//! `Scope::spawn` / `ScopedJoinHandle::join` as used by the seed-sweep
//! binary. Built on `std::thread::scope`, which has subsumed the
//! original crossbeam feature since Rust 1.63.

#![forbid(unsafe_code)]

pub mod thread {
    use std::any::Any;
    use std::thread as stdthread;

    /// Placeholder passed to spawned closures in place of crossbeam's
    /// nested-scope handle (callers here ignore it: `|_| ...`).
    #[derive(Clone, Copy, Debug)]
    pub struct NestedScope;

    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(NestedScope)),
            }
        }
    }

    /// Runs `f` with a scope whose spawned threads all join before
    /// this returns. Always `Ok`: a panicking child re-raises the
    /// panic here (crossbeam instead returns `Err`; callers treating
    /// that as fatal behave identically).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_join_and_return() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }
}
