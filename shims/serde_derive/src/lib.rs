//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` shim gives `Serialize`/`Deserialize` blanket
//! impls, so these derives only need to *exist* for `#[derive(...)]`
//! attributes to compile — they expand to nothing. The `serde`
//! helper attribute is registered so field-level annotations like
//! `#[serde(skip_serializing_if = "...")]` parse (and are ignored).

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
