//! Offline stand-in for `serde_derive`.
//!
//! The companion `serde` shim gives `Serialize`/`Deserialize` blanket
//! impls, so these derives only need to *exist* for `#[derive(...)]`
//! attributes to compile — they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
