//! Offline stand-in for `serde`.
//!
//! This workspace derives `Serialize`/`Deserialize` on report and
//! config types purely as API surface — nothing in-tree serializes
//! through serde (see `tests/report_and_config.rs`). With no network
//! and no vendored registry, the real crate is unavailable, so this
//! shim supplies the two traits as markers with blanket impls and
//! re-exports no-op derive macros. Swapping back to real serde is a
//! two-line change in the root `Cargo.toml`.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
