//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace uses —
//! `proptest! { #[test] fn f(x in strategy, ..) { .. } }`, numeric
//! range strategies, `prop::collection::vec`, and the `prop_assert*`
//! macros — as a deterministic random-sampling harness. Each test
//! function draws `PROPTEST_CASES` (default 128) cases from an RNG
//! seeded by the test's module path, so failures reproduce across
//! runs. Unlike real proptest there is no shrinking: a failing case
//! panics with the offending values printed by the assertion message.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::ops::{Range, RangeInclusive};

    /// Deterministic generator handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds the generator from an arbitrary label (test name).
        pub fn from_label(label: &str) -> Self {
            // FNV-1a over the label keeps distinct tests on distinct
            // deterministic streams.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
            Self(StdRng::seed_from_u64(h))
        }

        pub fn gen_f64(&mut self, lo: f64, hi_excl: f64) -> f64 {
            self.0.gen_range(lo..hi_excl)
        }

        pub fn gen_f64_inclusive(&mut self, lo: f64, hi: f64) -> f64 {
            self.0.gen_range(lo..=hi)
        }

        pub fn gen_u64(&mut self, lo: u64, hi_excl: u64) -> u64 {
            self.0.gen_range(lo..hi_excl)
        }
    }

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_f64(self.start, self.end)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_f64_inclusive(*self.start(), *self.end())
        }
    }

    macro_rules! int_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.gen_u64(0, span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi - lo) as u64;
                    lo + if span == u64::MAX {
                        rng.gen_u64(0, u64::MAX)
                    } else {
                        rng.gen_u64(0, span + 1)
                    } as $t
                }
            }
        )*};
    }

    int_strategies!(u8, u16, u32, u64, usize);

    /// How many cases each property runs (`PROPTEST_CASES` overrides).
    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128)
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};

    /// Lengths accepted by [`vec()`](crate::collection::vec): a `usize` range or an exact count.
    pub trait VecLen {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl VecLen for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty length range");
            self.start + rng.gen_u64(0, (self.end - self.start) as u64) as usize
        }
    }

    impl VecLen for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.gen_u64(0, (hi - lo + 1) as u64) as usize
        }
    }

    impl VecLen for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    pub struct VecStrategy<S, L> {
        elem: S,
        len: L,
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `prop::collection::vec(elem, len)` — vectors of `elem` samples.
    pub fn vec<S: Strategy, L: VecLen>(elem: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { elem, len }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    pub mod prop {
        pub use crate::collection;
    }
}

/// Expands each property into a `#[test]` that samples its strategies
/// over a deterministic case loop.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let label = concat!(module_path!(), "::", stringify!($name));
                let mut rng = $crate::strategy::TestRng::from_label(label);
                for _case in 0..$crate::strategy::cases() {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pairs() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0..10.0f64, 2)
    }

    proptest! {
        #[test]
        fn ranges_and_vecs_sample_in_bounds(
            xs in prop::collection::vec(0.0..1e9f64, 1..50),
            k in 1usize..10,
            q in 0.0..=1.0f64,
        ) {
            prop_assert!(xs.iter().all(|&x| (0.0..1e9).contains(&x)));
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            prop_assert!((1..10).contains(&k));
            prop_assert!((0.0..=1.0).contains(&q));
        }

        #[test]
        fn const_len_vec(p in pairs()) {
            prop_assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn deterministic_across_reconstruction() {
        use crate::strategy::{Strategy, TestRng};
        let s = prop::collection::vec(0.0..1.0f64, 1..20);
        let a: Vec<Vec<f64>> = {
            let mut r = TestRng::from_label("x");
            (0..10).map(|_| s.sample(&mut r)).collect()
        };
        let b: Vec<Vec<f64>> = {
            let mut r = TestRng::from_label("x");
            (0..10).map(|_| s.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
