//! Offline stand-in for `rayon`.
//!
//! The workspace builds with no network and no vendored registry, so —
//! like the sibling `serde`/`rand`/`crossbeam` shims — this crate
//! implements exactly the API subset the repo uses: parallel iteration
//! over owned collections and slices with order-preserving
//! `map(..).collect()`, `rayon::join`, `current_num_threads`, and a
//! `ThreadPoolBuilder`/`ThreadPool::install` pair for pinning the
//! worker count. Swapping back to the real crate is a one-line change
//! in the root `Cargo.toml`.
//!
//! Scheduling model: items are claimed one at a time from a shared
//! queue by `current_num_threads()` scoped `std` threads (dynamic load
//! balancing, like rayon's work stealing for coarse tasks), and results
//! are reassembled in input order, so `collect()` is deterministic
//! regardless of interleaving. With one worker the driver degenerates
//! to a plain serial loop on the calling thread.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations will use: the
/// innermost [`ThreadPool::install`] override, else `RAYON_NUM_THREADS`,
/// else `std::thread::available_parallelism()`.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join closure panicked");
        (ra, rb)
    })
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the worker count (0 means "use the default").
    #[must_use]
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    /// Never fails in the shim; the `Result` mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes parallel operations to a fixed worker count.
///
/// The shim holds no persistent workers; [`ThreadPool::install`] simply
/// pins [`current_num_threads`] for the closure's dynamic extent, and
/// scoped threads are spawned per operation.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `f` with this pool's worker count in force.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let n = self.num_threads.unwrap_or_else(current_num_threads);
        let prev = POOL_THREADS.with(|c| c.replace(Some(n)));
        let out = f();
        POOL_THREADS.with(|c| c.set(prev));
        out
    }

    /// Worker count operations under [`ThreadPool::install`] will use.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

/// Order-preserving parallel map driver: every combinator bottoms out
/// here. Items are claimed from a shared queue; results carry their
/// input index and are reassembled in order.
fn drive<T: Send, R: Send>(items: Vec<T>, f: &(dyn Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue = Mutex::new(items.into_iter().enumerate());
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let next = queue.lock().expect("queue poisoned").next();
                        match next {
                            Some((i, item)) => local.push((i, f(item))),
                            None => break,
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    });
    indexed.sort_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

pub mod iter {
    //! The parallel-iterator subset: `into_par_iter`/`par_iter` on
    //! vectors and slices, `map`, `for_each`, and `collect` into `Vec`.

    use super::drive;

    /// A parallel iterator over owned items.
    pub struct IntoParIter<T: Send> {
        items: Vec<T>,
    }

    /// A parallel iterator produced by [`ParallelIterator::map`].
    pub struct Map<I, F> {
        base: I,
        f: F,
    }

    /// Types convertible into a parallel iterator over owned items.
    pub trait IntoParallelIterator {
        /// Item type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Types whose references yield a parallel iterator (`par_iter`).
    pub trait IntoParallelRefIterator<'a> {
        /// Item type (a shared reference).
        type Item: Send + 'a;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Parallel iterator over `&self`'s items.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// The operations shared by every parallel iterator.
    pub trait ParallelIterator: Sized {
        /// Item type.
        type Item: Send;

        /// Consumes the iterator into a `Vec`, preserving input order.
        fn into_vec(self) -> Vec<Self::Item>;

        /// Maps every item through `f` (evaluated on the workers).
        fn map<R: Send, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> R + Sync + Send,
        {
            Map { base: self, f }
        }

        /// Runs `f` on every item.
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync + Send,
        {
            let _ = self.map(f).into_vec();
        }

        /// Collects into `C` (via `Vec`, preserving input order).
        fn collect<C: FromParallelVec<Self::Item>>(self) -> C {
            C::from_parallel_vec(self.into_vec())
        }

        /// Number of items (consumes the iterator).
        fn count(self) -> usize {
            self.into_vec().len()
        }
    }

    /// `collect()` target types.
    pub trait FromParallelVec<T> {
        /// Builds `Self` from the order-preserved result vector.
        fn from_parallel_vec(v: Vec<T>) -> Self;
    }

    impl<T> FromParallelVec<T> for Vec<T> {
        fn from_parallel_vec(v: Vec<T>) -> Self {
            v
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = IntoParIter<T>;
        fn into_par_iter(self) -> IntoParIter<T> {
            IntoParIter { items: self }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = IntoParIter<&'a T>;
        fn par_iter(&'a self) -> Self::Iter {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = IntoParIter<&'a T>;
        fn par_iter(&'a self) -> Self::Iter {
            IntoParIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<T: Send> ParallelIterator for IntoParIter<T> {
        type Item = T;
        fn into_vec(self) -> Vec<T> {
            self.items
        }
    }

    impl<I, R, F> ParallelIterator for Map<I, F>
    where
        I: ParallelIterator,
        R: Send,
        F: Fn(I::Item) -> R + Sync + Send,
    {
        type Item = R;
        fn into_vec(self) -> Vec<R> {
            drive(self.base.into_vec(), &self.f)
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::iter::{
        FromParallelVec, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..100).collect();
        let out: Vec<u64> = v.into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_over_slice() {
        let v = vec![1u32, 2, 3];
        let out: Vec<u32> = v.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn install_pins_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let nested = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            nested.install(|| assert_eq!(current_num_threads(), 1));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn parallel_equals_serial() {
        let pool4 = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let work = || -> Vec<u64> {
            (0u64..64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x.wrapping_mul(0x9e37_79b9).rotate_left(7))
                .collect()
        };
        assert_eq!(pool4.install(work), pool1.install(work));
    }
}
