//! End-to-end sharding properties over random topologies.
//!
//! The example-based equivalence matrix (`tests/sharded_equivalence.rs`)
//! pins one topology; this suite drives the sharded runtime over
//! *random* seeded topologies, stream tables, and shard counts and
//! holds the invariants that must survive any partition:
//!
//! * the controller's plan is a partition of the stream table;
//! * the merged report covers every stream at its global index;
//! * admission offers exactly the drained workload (no arrival lost in
//!   the partition step);
//! * packet conservation (`Metrics::conserved()`) holds post-merge.

use iqpaths_apps::workload::{FramedSource, Workload};
use iqpaths_core::scheduler::{Pgos, PgosConfig};
use iqpaths_core::stream::StreamSpec;
use iqpaths_core::traits::MultipathScheduler;
use iqpaths_middleware::runtime::RuntimeConfig;
use iqpaths_middleware::sharded::run_sharded;
use iqpaths_simnet::fault::FaultSchedule;
use iqpaths_testkit::TopologyGen;
use iqpaths_trace::TraceHandle;
use proptest::prelude::*;

const DURATION: f64 = 6.0;
const WARMUP: f64 = 2.0;

/// A table of `n` low-rate streams alternating guarantee classes; rates
/// divide exactly at 25 fps so FramedSource offers a deterministic
/// arrival count.
fn random_streams(n: usize) -> Vec<StreamSpec> {
    (0..n)
        .map(|i| {
            let name = format!("s{i}");
            match i % 3 {
                0 => StreamSpec::probabilistic(i, &name, 1.0e6, 0.9, 1250),
                1 => StreamSpec::violation_bound(i, &name, 1.0e6, 30.0, 1250),
                _ => StreamSpec::best_effort(i, &name, 1.0e6, 1250),
            }
        })
        .collect()
}

proptest! {
    #[test]
    fn sharded_runs_conserve_packets_on_random_topologies(
        seed in 0u64..1_000_000,
        n_paths in 2usize..5,
        n_streams in 1usize..9,
        shards in 1usize..9,
    ) {
        let paths = TopologyGen {
            seed,
            paths: n_paths,
            horizon: WARMUP + DURATION + 5.0,
            ..TopologyGen::default()
        }
        .build();
        let specs = random_streams(n_streams);
        let frames: Vec<u32> = specs.iter().map(|_| 5000).collect();
        let workload = FramedSource::new(specs.clone(), frames, 25.0, DURATION);
        // The generator emits a fixed arrival schedule: n_streams
        // frames per tick, 25 ticks per second.
        let expected_arrivals = {
            let mut probe = FramedSource::new(specs.clone(), vec![5000; n_streams], 25.0, DURATION);
            let mut count = vec![0u64; n_streams];
            while let Some(a) = probe.next_arrival() {
                count[a.stream] += 1;
            }
            count
        };
        let factory = |specs: Vec<StreamSpec>, n: usize| -> Box<dyn MultipathScheduler> {
            Box::new(Pgos::new(PgosConfig::default(), specs, n))
        };
        let cfg = RuntimeConfig {
            warmup_secs: WARMUP,
            history_samples: 50,
            seed,
            shards,
            ..RuntimeConfig::default()
        };
        let out = run_sharded(
            &paths,
            Box::new(workload),
            &factory,
            cfg,
            DURATION,
            &FaultSchedule::new(),
            TraceHandle::null(),
            &mut |_| {},
        );

        prop_assert!(out.plan.is_partition());
        prop_assert_eq!(out.plan.n_streams(), n_streams);
        prop_assert_eq!(out.shard_seeds.len(), out.plan.shards());
        prop_assert_eq!(out.report.streams.len(), n_streams);
        for (i, s) in out.report.streams.iter().enumerate() {
            prop_assert_eq!(s.name.as_str(), format!("s{i}").as_str());
        }
        // No arrival lost in the partition step: per-stream offered
        // load equals the generator's schedule exactly.
        for (i, row) in out.report.metrics.streams.iter().enumerate() {
            prop_assert_eq!(
                row.enqueued + row.queue_dropped,
                expected_arrivals[i],
                "stream {i} lost arrivals in the partition (shards={})", shards
            );
        }
        prop_assert!(
            out.report.metrics.conserved(),
            "conservation violated at shards={} seed={}", shards, seed
        );
        prop_assert_eq!(out.path_cdfs.len(), n_paths);
    }
}
