//! Blocked-path handling: "whenever a path is blocked, the scheduler
//! switches to the next path immediately … timeouts and exponential
//! backoff are used to avoid sending multiple packets to a blocked
//! path."

use iq_paths::apps::workload::FramedSource;
use iq_paths::middleware::runtime::{run, RuntimeConfig};
use iq_paths::overlay::path::OverlayPath;
use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
use iq_paths::pgos::stream::StreamSpec;
use iq_paths::pgos::traits::MultipathScheduler;
use iq_paths::simnet::link::Link;
use iq_paths::simnet::time::SimDuration;
use iq_paths::traces::RateTrace;

/// Path saturated (cross = capacity, residual pinned at the tiny floor)
/// during `[block_from, block_to)`, otherwise carrying `idle_cross`.
fn blocking_path(
    index: usize,
    idle_cross: f64,
    block_from: f64,
    block_to: f64,
    horizon: f64,
) -> OverlayPath {
    let epoch = 0.1;
    let n = (horizon / epoch).ceil() as usize;
    let rates = (0..n)
        .map(|i| {
            let t = i as f64 * epoch;
            if (block_from..block_to).contains(&t) {
                100.0e6
            } else {
                idle_cross * 1.0e6
            }
        })
        .collect();
    let link = Link::new(format!("l{index}"), 100.0e6, SimDuration::from_millis(1))
        .with_cross_traffic(RateTrace::new(epoch, rates));
    OverlayPath::new(index, format!("p{index}"), vec![link])
}

#[test]
fn saturated_path_is_skipped_and_traffic_survives() {
    let warmup = 20.0;
    let duration = 40.0;
    let horizon = warmup + duration + 5.0;
    // Path 0 saturates completely for 15 s in the middle of the run;
    // path 1 stays clean.
    let paths = vec![
        blocking_path(0, 20.0, warmup + 10.0, warmup + 25.0, horizon),
        blocking_path(1, 40.0, horizon + 1.0, horizon + 2.0, horizon),
    ];
    let specs = vec![StreamSpec::probabilistic(0, "crit", 25.0e6, 0.9, 1250)];
    let frame = (25.0e6 / (8.0 * 25.0)) as u32;
    let w = FramedSource::new(specs.clone(), vec![frame], 25.0, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 2);
    let cfg = RuntimeConfig {
        warmup_secs: warmup,
        history_samples: 100,
        ..Default::default()
    };
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg, duration);
    let s = report.streams[0].summary();
    // Blocked windows cost at most the adaptation transient.
    assert!(
        s.meet_fraction >= 0.8,
        "stream collapsed during blocking: meet {}",
        s.meet_fraction
    );
    // After the blockage everything is back on target.
    let tail =
        &report.streams[0].throughput_series[report.streams[0].throughput_series.len() - 5..];
    assert!(tail.iter().all(|&v| v >= 24.9e6), "tail {tail:?}");
    // And the run completed without an event explosion (the backoff
    // keeps the blocked path from being polled per-packet).
    assert!(report.events < 3_000_000, "event storm: {}", report.events);
}

#[test]
fn backoff_retry_timestamps_are_exact() {
    // The paper's §5.2.2 backoff discipline, pinned to the nanosecond:
    // 5 ms initial step, doubling per consecutive blocked retry, capped
    // at 1 s. Each retry fires exactly when the previous backoff
    // expires, so the k-th retry timestamp is t0 + Σ steps.
    let cfg = PgosConfig::default();
    assert_eq!(cfg.backoff_initial_ns, 5_000_000);
    assert_eq!(cfg.backoff_max_ns, 1_000_000_000);

    let specs = vec![StreamSpec::probabilistic(0, "crit", 10.0e6, 0.9, 1250)];
    let mut pgos = Pgos::new(cfg, specs, 2);

    // Untouched paths carry no backoff state.
    assert_eq!(pgos.backoff_step(0), 0);
    assert_eq!(pgos.backoff_until(0), 0);

    let t0: u64 = 1_000_000;
    let mut now = t0;
    let mut expected_step: u64 = 5_000_000;
    let mut expected_until = t0;
    // 5, 10, 20, 40, 80, 160, 320, 640 ms: the pure doubling regime.
    for _ in 0..8 {
        pgos.on_path_blocked(0, now);
        expected_until += expected_step;
        assert_eq!(pgos.backoff_step(0), expected_step);
        assert_eq!(pgos.backoff_until(0), expected_until);
        now = expected_until; // retry exactly at expiry, still blocked
        expected_step *= 2;
    }
    // Ninth retry would be 1280 ms: clamped to the 1 s cap, and every
    // retry after that stays exactly 1 s apart.
    for _ in 0..3 {
        pgos.on_path_blocked(0, now);
        expected_until += 1_000_000_000;
        assert_eq!(pgos.backoff_step(0), 1_000_000_000);
        assert_eq!(pgos.backoff_until(0), expected_until);
        now = expected_until;
    }
    // The other path never backed off.
    assert_eq!(pgos.backoff_step(1), 0);
    assert_eq!(pgos.backoff_until(1), 0);
}

#[test]
fn permanently_blocked_path_degrades_to_single_path_service() {
    let warmup = 20.0;
    let duration = 20.0;
    let horizon = warmup + duration + 5.0;
    let paths = vec![
        blocking_path(0, 20.0, 0.0, horizon, horizon), // always saturated
        blocking_path(1, 30.0, horizon + 1.0, horizon + 2.0, horizon),
    ];
    let specs = vec![StreamSpec::probabilistic(0, "crit", 30.0e6, 0.9, 1250)];
    let frame = (30.0e6 / (8.0 * 25.0)) as u32;
    let w = FramedSource::new(specs.clone(), vec![frame], 25.0, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 2);
    let cfg = RuntimeConfig {
        warmup_secs: warmup,
        history_samples: 100,
        ..Default::default()
    };
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg, duration);
    // All useful traffic rides path 1; path 0 carries at most a trickle
    // of probing-era packets.
    assert!(
        report.path_sent_bytes[0] < report.path_sent_bytes[1] / 50,
        "{:?}",
        report.path_sent_bytes
    );
    assert!(report.streams[0].summary().meet_fraction >= 0.9);
}
