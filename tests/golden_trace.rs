//! Golden-trace regression suite.
//!
//! Pinned-seed scenarios serialize their *decision-level* trace
//! (window boundaries, CDF digests, mapping decisions, upcalls,
//! blocking/backoff — see `TraceEvent::is_decision`) to JSONL and diff
//! it against `tests/golden/*.jsonl`. Any change to monitoring,
//! mapping, or scheduling decisions shows up as a readable line diff.
//!
//! When a decision change is *intended*, refresh the goldens with
//! `UPDATE_GOLDEN=1 cargo test --test golden_trace` and commit the
//! diff — the point is that decision changes are reviewed, never
//! silent. A copy of each regenerated trace is also dropped under
//! `target/experiments/traces/` for CI artifact upload.
//!
//! The compare/refresh/artifact machinery itself lives in
//! `iqpaths_testkit::golden` (shared with the scalability golden
//! suite); this file only owns the pinned scenarios.

use iqpaths_middleware::ShardExecution;
use iqpaths_overlay::node::CdfMode;
use iqpaths_overlay::planner::{PlannerKind, ProbeBudget};
use iqpaths_testkit::{
    check_golden_trace, decisions_jsonl, run_conformance, run_conformance_traced,
    run_conformance_traced_with, ConformanceConfig, FaultScenario,
};

/// Pinned seed, matching the conformance job.
const SEED: u64 = 11;

/// The refresh command cited by divergence panics.
const REFRESH: &str = "cargo test --test golden_trace";

fn golden_case(scenario: FaultScenario) -> ConformanceConfig {
    ConformanceConfig {
        duration: 60.0,
        warmup: 10.0,
        ..ConformanceConfig::new(SEED, CdfMode::Exact, scenario)
    }
}

/// Runs a golden scenario and compares (or, under `UPDATE_GOLDEN=1`,
/// rewrites) its pinned decision trace.
fn check_golden(scenario: FaultScenario, name: &str) {
    check_golden_cfg(golden_case(scenario), name);
}

fn check_golden_cfg(cfg: ConformanceConfig, name: &str) {
    let (_, events) = run_conformance_traced(cfg);
    check_golden_trace(name, REFRESH, &events);
}

#[test]
fn golden_no_fault_decision_trace() {
    check_golden(FaultScenario::NoFault, "no_fault.jsonl");
}

#[test]
fn golden_flap_decision_trace() {
    check_golden(FaultScenario::Flap, "flap.jsonl");
}

#[test]
fn golden_sharded_flap_decision_trace() {
    // The sharded runtime's canonical merge order (stream-remapped,
    // shard-major concatenation, stable sort by timestamp) makes the
    // merged trace a pure function of the plan — so it goldens exactly
    // like a serial trace. Two shards on the 3-stream conformance mix.
    check_golden_cfg(
        golden_case(FaultScenario::Flap).with_shards(2),
        "sharded_flap.jsonl",
    );
}

#[test]
fn golden_probe_budget_flap_decision_trace() {
    // The active planner under a 25% budget: its `probe_plan` /
    // `probe_select` decisions land in the golden alongside the
    // mapping/window decisions they perturb, so any scoring or
    // tie-break change is reviewed as a line diff.
    check_golden_cfg(
        golden_case(FaultScenario::Flap)
            .with_planner(PlannerKind::Active, ProbeBudget::percent(25)),
        "probe_budget_flap.jsonl",
    );
}

#[test]
fn traced_equals_untraced_under_active_planner() {
    // Planner trace emission must not perturb the planned schedule or
    // the run it drives.
    let case = golden_case(FaultScenario::Flap)
        .with_planner(PlannerKind::Active, ProbeBudget::percent(25));
    let untraced = run_conformance(case);
    let (traced, events) = run_conformance_traced(case);
    assert!(!events.is_empty());
    assert_eq!(untraced.report, traced.report);
    assert_eq!(untraced.probe_counts, traced.probe_counts);
    assert_eq!(untraced.eligible_windows, traced.eligible_windows);
}

#[test]
fn default_planner_emits_no_planner_events() {
    // With the default periodic/unlimited configuration the planner is
    // pass-through and must stay invisible — the pre-planner goldens
    // depend on it.
    let (_, events) = run_conformance_traced(golden_case(FaultScenario::Flap));
    assert!(!events
        .iter()
        .any(|e| matches!(e.kind(), "probe_plan" | "probe_select")));
}

#[test]
fn sharded_golden_is_execution_strategy_independent() {
    // The golden above is generated with parallel workers; serial
    // workers over the same plan must serialize byte-identically.
    let case = golden_case(FaultScenario::Flap).with_shards(2);
    let (ra, a) = run_conformance_traced_with(case, ShardExecution::Serial);
    let (rb, b) = run_conformance_traced_with(case, ShardExecution::Parallel);
    assert_eq!(decisions_jsonl(&a), decisions_jsonl(&b));
    assert_eq!(ra.report, rb.report);
}

#[test]
fn traced_equals_untraced_under_shards() {
    // Attaching the trace must not perturb a sharded run: workers emit
    // into private sinks, and the controller's merge is independent of
    // whether anyone is listening.
    let case = golden_case(FaultScenario::Blackout).with_shards(2);
    let untraced = run_conformance(case);
    let (traced, events) = run_conformance_traced(case);
    assert!(!events.is_empty());
    assert_eq!(untraced.report, traced.report);
    assert_eq!(untraced.eligible_windows, traced.eligible_windows);
}

#[test]
fn golden_traces_are_bit_stable_across_runs() {
    // Two identical runs must serialize byte-identically — the property
    // that makes the golden diff meaningful at all.
    let case = golden_case(FaultScenario::Flap);
    let (_, a) = run_conformance_traced(case);
    let (_, b) = run_conformance_traced(case);
    assert_eq!(a.len(), b.len(), "event counts differ between runs");
    assert_eq!(decisions_jsonl(&a), decisions_jsonl(&b));
}

#[test]
fn decision_trace_is_a_small_subset() {
    // The golden files stay reviewable: decision events are a tiny
    // fraction of the full packet-level trace.
    let (_, events) = run_conformance_traced(golden_case(FaultScenario::Flap));
    let decisions = events.iter().filter(|e| e.is_decision()).count();
    assert!(decisions > 0);
    assert!(
        decisions * 10 < events.len(),
        "decision events ({decisions}) should be < 10% of the trace ({})",
        events.len()
    );
}
