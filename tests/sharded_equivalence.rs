//! Serial ≡ sharded equivalence matrix for the controller/data-plane
//! runtime (`iqpaths_middleware::sharded`).
//!
//! The matrix covers {1, 2, 4, 8} shards × {no-fault, flap, blackout,
//! churn} × the three sweep CDF backends, with pinned seeds. Which
//! fields are compared how:
//!
//! * **Bit-identical** (full `RunReport` `PartialEq`, plus the delivery
//!   stream seen by the sink):
//!   * `shards = 1` against the classic serial event loop — the
//!     pass-through contract; every field must match exactly.
//!   * [`ShardExecution::Serial`] against [`ShardExecution::Parallel`]
//!     at every shard count — the merged outcome may not depend on
//!     thread scheduling, completion order, or core count.
//! * **Conformance-checked** (across *different* shard counts): a
//!   worker sees only its own shard's queue pressure on its private
//!   path services, so runs at different shard counts are different
//!   experiments — their throughput series, window decisions, and
//!   event counts legitimately differ. What must still agree with the
//!   serial reference at every shard count:
//!   * the stream table: same names at the same global indices;
//!   * admission: per-stream offered load (`enqueued + queue_dropped`)
//!     is exactly the drained workload, so it is equal at every shard
//!     count;
//!   * packet conservation (`Metrics::conserved()`) after the
//!     cross-shard merge;
//!   * liveness: every stream delivers packets under every scenario;
//!   * report framing: scheduler name, duration, monitor window.
//!
//! On divergence the suite writes both sides' full reports under
//! `target/experiments/sharded/` (CI uploads them as artifacts) before
//! panicking.

use iqpaths_apps::workload::FramedSource;
use iqpaths_core::scheduler::{Pgos, PgosConfig};
use iqpaths_core::stream::StreamSpec;
use iqpaths_core::traits::MultipathScheduler;
use iqpaths_middleware::runtime::{self, DeliveryEvent, RuntimeConfig};
use iqpaths_middleware::sharded::{run_sharded_with, ShardExecution, ShardedOutcome};
use iqpaths_middleware::RunReport;
use iqpaths_overlay::node::CdfMode;
use iqpaths_overlay::path::OverlayPath;
use iqpaths_simnet::fault::FaultSchedule;
use iqpaths_testkit::{sweep_modes, FaultScenario, TopologyGen};
use iqpaths_trace::TraceHandle;
use std::fs;
use std::path::PathBuf;

/// Pinned run seed for the whole matrix.
const SEED: u64 = 1234;
/// Measured duration; must clear the fault scenarios' 40 s floor.
const DURATION: f64 = 44.0;
/// Monitoring warm-up before the measured window.
const WARMUP: f64 = 8.0;
/// The shard axis of the matrix.
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Seeded 3-path topology shared by every cell.
fn testbed() -> Vec<OverlayPath> {
    TopologyGen {
        seed: SEED,
        horizon: WARMUP + DURATION + 10.0,
        ..TopologyGen::default()
    }
    .build()
}

/// Eight streams (so an 8-shard plan is not clamped) mixing all three
/// guarantee classes. Total guaranteed demand (9 Mbps) stays feasible
/// on any generated path, matching the conformance suite's sizing
/// discipline; every rate divides exactly at 25 fps.
fn eight_streams() -> Vec<StreamSpec> {
    vec![
        StreamSpec::probabilistic(0, "p0", 1.5e6, 0.9, 1250),
        StreamSpec::probabilistic(1, "p1", 1.5e6, 0.9, 1250),
        StreamSpec::probabilistic(2, "p2", 1.5e6, 0.9, 1250),
        StreamSpec::probabilistic(3, "p3", 1.5e6, 0.9, 1250),
        StreamSpec::violation_bound(4, "v0", 1.5e6, 30.0, 1250),
        StreamSpec::violation_bound(5, "v1", 1.5e6, 30.0, 1250),
        StreamSpec::best_effort(6, "b0", 1.0e6, 1250),
        StreamSpec::best_effort(7, "b1", 1.0e6, 1250),
    ]
}

fn workload() -> FramedSource {
    let specs = eight_streams();
    let frames: Vec<u32> = specs
        .iter()
        .map(|s| (s.required_bw.max(s.weight) / (8.0 * 25.0)).round() as u32)
        .collect();
    FramedSource::new(specs, frames, 25.0, DURATION)
}

fn cfg(mode: CdfMode, shards: usize) -> RuntimeConfig {
    RuntimeConfig {
        warmup_secs: WARMUP,
        history_samples: 100,
        seed: SEED,
        cdf_mode: mode,
        shards,
        ..RuntimeConfig::default()
    }
}

fn faults(scenario: FaultScenario) -> FaultSchedule {
    scenario.schedule(WARMUP, WARMUP + DURATION)
}

/// The classic serial event loop — the reference every cell compares
/// against.
fn serial_reference(mode: CdfMode, scenario: FaultScenario) -> (RunReport, Vec<DeliveryEvent>) {
    let paths = testbed();
    let mut deliveries = Vec::new();
    let report = runtime::run_faulted(
        &paths,
        Box::new(workload()),
        Box::new(Pgos::new(
            PgosConfig::default(),
            eight_streams(),
            paths.len(),
        )),
        cfg(mode, 1),
        DURATION,
        &faults(scenario),
        &mut |d| deliveries.push(*d),
    );
    (report, deliveries)
}

/// One sharded run of the cell.
fn sharded_run(
    mode: CdfMode,
    scenario: FaultScenario,
    shards: usize,
    execution: ShardExecution,
) -> (ShardedOutcome, Vec<DeliveryEvent>) {
    let paths = testbed();
    let factory = |specs: Vec<StreamSpec>, n_paths: usize| -> Box<dyn MultipathScheduler> {
        Box::new(Pgos::new(PgosConfig::default(), specs, n_paths))
    };
    let mut deliveries = Vec::new();
    let out = run_sharded_with(
        &paths,
        Box::new(workload()),
        &factory,
        cfg(mode, shards),
        DURATION,
        &faults(scenario),
        TraceHandle::null(),
        &mut |d| deliveries.push(*d),
        execution,
    );
    (out, deliveries)
}

fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/experiments/sharded")
}

/// Writes both sides of a divergence as readable artifacts and panics
/// with their locations — CI uploads `target/experiments/sharded/` on
/// failure so the diff is inspectable without a local repro.
fn divergence(cell: &str, left_label: &str, left: &str, right_label: &str, right: &str) -> ! {
    let dir = artifact_dir();
    fs::create_dir_all(&dir).unwrap();
    let lp = dir.join(format!("{cell}.{left_label}.txt"));
    let rp = dir.join(format!("{cell}.{right_label}.txt"));
    fs::write(&lp, left).unwrap();
    fs::write(&rp, right).unwrap();
    panic!(
        "{cell}: {left_label} and {right_label} diverged; \
         divergence artifacts at {} and {}",
        lp.display(),
        rp.display()
    );
}

fn report_text(report: &RunReport, deliveries: &[DeliveryEvent]) -> String {
    format!(
        "{report:#?}\ndeliveries: {} events\n{deliveries:#?}",
        deliveries.len()
    )
}

/// Per-stream offered load: exactly the arrivals the workload
/// generated, however the stream table was partitioned.
fn offered(report: &RunReport) -> Vec<u64> {
    report
        .metrics
        .streams
        .iter()
        .map(|s| s.enqueued + s.queue_dropped)
        .collect()
}

/// Runs the full shard axis for one (mode, scenario) cell.
fn assert_cell(mode: CdfMode, mode_name: &str, scenario: FaultScenario) {
    let (reference, ref_deliveries) = serial_reference(mode, scenario);
    let cell = format!("{}_{mode_name}", scenario.name().replace('-', "_"));

    for shards in SHARD_COUNTS {
        let (s, ds) = sharded_run(mode, scenario, shards, ShardExecution::Serial);
        let (p, dp) = sharded_run(mode, scenario, shards, ShardExecution::Parallel);

        // Bit-identical across execution strategies of the same plan.
        if s.report != p.report || ds != dp {
            divergence(
                &format!("{cell}_sh{shards}"),
                "serial-exec",
                &report_text(&s.report, &ds),
                "parallel-exec",
                &report_text(&p.report, &dp),
            );
        }
        assert_eq!(s.shard_seeds, p.shard_seeds);
        assert_eq!(s.plan, p.plan);
        for (a, b) in s.path_cdfs.iter().zip(&p.path_cdfs) {
            assert_eq!(a.ks_distance(b), 0.0, "{cell}: merged path CDFs differ");
        }

        if shards == 1 {
            // Pass-through: byte-identical to the serial runtime.
            if p.report != reference || dp != ref_deliveries {
                divergence(
                    &format!("{cell}_sh1"),
                    "sharded",
                    &report_text(&p.report, &dp),
                    "reference",
                    &report_text(&reference, &ref_deliveries),
                );
            }
            continue;
        }

        // Conformance against the serial reference (see module docs for
        // why these fields — and only these — must agree exactly).
        assert_eq!(p.plan.shards(), shards, "{cell}: plan clamped unexpectedly");
        assert!(
            p.plan.is_partition(),
            "{cell}: shard plan is not a partition"
        );
        let names: Vec<&str> = p.report.streams.iter().map(|s| s.name.as_str()).collect();
        let ref_names: Vec<&str> = reference.streams.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ref_names, "{cell}@sh{shards}: stream table mismatch");
        assert_eq!(
            offered(&p.report),
            offered(&reference),
            "{cell}@sh{shards}: admission must offer identical per-stream load"
        );
        assert!(
            p.report.metrics.conserved(),
            "{cell}@sh{shards}: packet conservation violated after merge"
        );
        assert!(
            p.report.streams.iter().all(|s| s.delivered_packets > 0),
            "{cell}@sh{shards}: a stream starved"
        );
        assert_eq!(p.report.scheduler, reference.scheduler);
        assert_eq!(p.report.duration, reference.duration);
        assert_eq!(p.report.monitor_window, reference.monitor_window);
    }
}

macro_rules! matrix_cell {
    ($fn_name:ident, $mode_idx:expr, $mode_name:expr, $scenario:expr) => {
        #[test]
        fn $fn_name() {
            assert_cell(sweep_modes()[$mode_idx], $mode_name, $scenario);
        }
    };
}

matrix_cell!(no_fault_exact, 0, "exact", FaultScenario::NoFault);
matrix_cell!(no_fault_rolling, 1, "rolling", FaultScenario::NoFault);
matrix_cell!(no_fault_sketch, 2, "sketch", FaultScenario::NoFault);
matrix_cell!(flap_exact, 0, "exact", FaultScenario::Flap);
matrix_cell!(flap_rolling, 1, "rolling", FaultScenario::Flap);
matrix_cell!(flap_sketch, 2, "sketch", FaultScenario::Flap);
matrix_cell!(blackout_exact, 0, "exact", FaultScenario::Blackout);
matrix_cell!(blackout_rolling, 1, "rolling", FaultScenario::Blackout);
matrix_cell!(blackout_sketch, 2, "sketch", FaultScenario::Blackout);
matrix_cell!(churn_exact, 0, "exact", FaultScenario::Churn);
matrix_cell!(churn_rolling, 1, "rolling", FaultScenario::Churn);
matrix_cell!(churn_sketch, 2, "sketch", FaultScenario::Churn);
