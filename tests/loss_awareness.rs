//! Loss-aware guarantees (the §7 future-work extension): link loss
//! reduces goodput, monitoring measures it, and PGOS routes guaranteed
//! streams around lossy paths because its CDFs are goodput-scaled.

use iq_paths::apps::workload::FramedSource;
use iq_paths::middleware::runtime::{run, RuntimeConfig};
use iq_paths::overlay::path::OverlayPath;
use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
use iq_paths::pgos::stream::StreamSpec;
use iq_paths::simnet::link::Link;
use iq_paths::simnet::time::SimDuration;

fn path(index: usize, capacity_mbps: f64, loss: f64) -> OverlayPath {
    let link = Link::new(
        format!("l{index}"),
        capacity_mbps * 1.0e6,
        SimDuration::from_millis(1),
    )
    .with_loss(loss);
    OverlayPath::new(index, format!("p{index}"), vec![link])
}

fn cfg() -> RuntimeConfig {
    RuntimeConfig {
        warmup_secs: 10.0,
        ..Default::default()
    }
}

fn workload(specs: Vec<StreamSpec>, rate: f64, duration: f64) -> FramedSource {
    let frame = (rate / (8.0 * 25.0)).round() as u32;
    FramedSource::new(specs, vec![frame], 25.0, duration)
}

#[test]
fn transit_loss_is_counted_and_reduces_goodput() {
    let duration = 20.0;
    let paths = vec![path(0, 100.0, 0.10)];
    let specs = vec![StreamSpec::probabilistic(0, "s", 20.0e6, 0.9, 1250)];
    let w = workload(specs.clone(), 20.0e6, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 1);
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg(), duration);
    let s = &report.streams[0];
    assert!(
        (s.transit_loss_rate - 0.10).abs() < 0.02,
        "loss rate {}",
        s.transit_loss_rate
    );
    // Goodput ≈ 90% of the offered 20 Mbps.
    let mean = s.mean_throughput();
    assert!(
        (mean - 18.0e6).abs() / 18.0e6 < 0.05,
        "goodput {mean} should reflect 10% loss"
    );
}

#[test]
fn pgos_prefers_the_clean_path() {
    let duration = 30.0;
    // Two equal-capacity paths; path 0 loses 20% of packets. The stream
    // carries a 2% loss-rate objective (§7 extension).
    let paths = vec![path(0, 100.0, 0.20), path(1, 100.0, 0.0)];
    let specs =
        vec![StreamSpec::probabilistic(0, "crit", 30.0e6, 0.95, 1250).with_loss_bound(0.02)];
    let w = workload(specs.clone(), 30.0e6, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 2);
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg(), duration);
    // The first window has no loss measurements yet, so early packets
    // may ride path 0; after monitoring catches up the stream must live
    // on the clean path.
    let p0 = report.path_sent_bytes[0] as f64;
    let p1 = report.path_sent_bytes[1] as f64;
    assert!(
        p1 > 5.0 * p0.max(1.0),
        "clean path carried {p1} vs lossy {p0}"
    );
    assert!(report.streams[0].summary().meet_fraction > 0.9);
}

#[test]
fn lossless_paths_report_zero_loss() {
    let duration = 10.0;
    let paths = vec![path(0, 100.0, 0.0)];
    let specs = vec![StreamSpec::probabilistic(0, "s", 10.0e6, 0.9, 1250)];
    let w = workload(specs.clone(), 10.0e6, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 1);
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg(), duration);
    assert_eq!(report.streams[0].transit_lost, 0);
    assert_eq!(report.streams[0].transit_loss_rate, 0.0);
}
