//! Empirical validation of the paper's analytical guarantees: run the
//! full stack and check that measured behaviour respects the Lemma 1
//! service probability and the Lemma 2 expected-miss bound computed
//! from the same CDFs the scheduler saw.

use iq_paths::apps::workload::FramedSource;
use iq_paths::middleware::runtime::{run, RuntimeConfig};
use iq_paths::overlay::path::OverlayPath;
use iq_paths::pgos::guarantee::{lemma1_probability, lemma2_expected_misses};
use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
use iq_paths::pgos::stream::StreamSpec;
use iq_paths::prelude::*;
use iq_paths::simnet::link::Link;
use iq_paths::simnet::time::SimDuration;
use iq_paths::traces::envelope::{available_bandwidth, EnvelopeConfig};
use iq_paths::traces::RateTrace;

fn envelope_path(util: (f64, f64), seed: u64, horizon: f64) -> (OverlayPath, RateTrace) {
    let cap = 100.0e6;
    let avail = available_bandwidth(
        &EnvelopeConfig {
            capacity: cap,
            util_range: util,
            ..Default::default()
        },
        0.1,
        horizon,
        seed,
    );
    let cross = RateTrace::new(
        0.1,
        avail.rates().iter().map(|a| (cap - a).max(0.0)).collect(),
    );
    let link = Link::new("l", cap, SimDuration::from_millis(1)).with_cross_traffic(cross);
    (OverlayPath::new(0, "p", vec![link]), avail)
}

#[test]
fn lemma1_probability_is_respected_end_to_end() {
    let warmup = 30.0;
    let duration = 100.0;
    let (path, avail) = envelope_path((0.4, 0.5), 21, warmup + duration + 5.0);

    // Ground-truth CDF over the measurement interval.
    let truth =
        EmpiricalCdf::from_clean_samples(avail.slice(warmup, warmup + duration).rates().to_vec());
    // Demand at the 10th percentile: Lemma 1 promises service with
    // probability 1 − F(b0) ≈ 0.9.
    let req = truth.quantile(0.10).unwrap();
    let pkt: u32 = 1250;
    let x = (req / (pkt as f64 * 8.0)).floor() as u32;
    let promised = lemma1_probability(&truth, x, pkt, 1.0);
    assert!(promised >= 0.85, "test setup: promised {promised}");

    let rate = x as f64 * pkt as f64 * 8.0;
    let specs = vec![StreamSpec::probabilistic(0, "s", rate, 0.85, pkt)];
    let frame = (rate / (8.0 * 25.0)).round() as u32;
    let w = FramedSource::new(specs.clone(), vec![frame], 25.0, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 1);
    let cfg = RuntimeConfig {
        warmup_secs: warmup,
        ..Default::default()
    };
    let report = run(&[path], Box::new(w), Box::new(pgos), cfg, duration);
    // Count windows at ≥ 99% of target: report windows are not aligned
    // with scheduling windows, so a packet straddling the boundary can
    // shave one packet's worth (< 1%) off a window's tally without any
    // service shortfall.
    let series = &report.streams[0].throughput_series;
    let meet = series.iter().filter(|&&v| v >= 0.99 * rate).count() as f64 / series.len() as f64;
    assert!(
        meet + 0.07 >= promised,
        "measured {meet} vs promised {promised}"
    );
}

#[test]
fn lemma2_bound_dominates_measured_misses() {
    let warmup = 30.0;
    let duration = 100.0;
    let (path, avail) = envelope_path((0.45, 0.55), 33, warmup + duration + 5.0);
    let truth =
        EmpiricalCdf::from_clean_samples(avail.slice(warmup, warmup + duration).rates().to_vec());
    // Demand near the 25th percentile: some windows will miss.
    let req = truth.quantile(0.25).unwrap();
    let pkt: u32 = 1250;
    let x = (req / (pkt as f64 * 8.0)).floor() as u32;
    let bound = lemma2_expected_misses(&truth, x, pkt, 1.0);
    assert!(bound > 0.0, "test setup: vacuous bound");

    let rate = x as f64 * pkt as f64 * 8.0;
    // Admit with a permissive requirement so PGOS actually runs at this
    // demand level (we are validating the bound, not admission).
    let specs = vec![StreamSpec::probabilistic(0, "s", rate, 0.5, pkt)];
    let frame = (rate / (8.0 * 25.0)).round() as u32;
    let w = FramedSource::new(specs.clone(), vec![frame], 25.0, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 1);
    let cfg = RuntimeConfig {
        warmup_secs: warmup,
        ..Default::default()
    };
    let report = run(&[path], Box::new(w), Box::new(pgos), cfg, duration);
    // Lemma 2's Z counts, per scheduling window, how many of the
    // window's x packets went unserved (window-constraint semantics:
    // each window brings x fresh obligations). Measure it as the mean
    // per-window service shortfall.
    let pkt_bits = pkt as f64 * 8.0;
    let shortfalls: Vec<f64> = report.streams[0]
        .throughput_series
        .iter()
        .map(|&v| (x as f64 - v / pkt_bits).max(0.0))
        .collect();
    let measured = shortfalls.iter().sum::<f64>() / shortfalls.len() as f64;
    assert!(
        measured <= bound * 1.5 + 1.0,
        "measured E[Z] {measured:.2} exceeds Lemma 2 bound {bound:.2}"
    );
    // And the bound is not vacuously loose: the system really does miss
    // sometimes at this demand level.
    assert!(
        shortfalls.iter().any(|&z| z > 0.0),
        "demand at the 25th percentile never missed — test lost its bite"
    );
}

#[test]
fn percentile_floor_equals_lemma1_inversion() {
    // The monitoring floor at guarantee p is exactly the largest rate
    // whose Lemma 1 probability is ≥ p.
    let (_, avail) = envelope_path((0.3, 0.6), 44, 300.0);
    let mut pred = PercentilePredictor::new(500, 0.9);
    for (i, &bw) in avail.rates().iter().enumerate().take(500) {
        pred.observe(i as f64 * 0.1, bw);
    }
    let floor = pred.floor().unwrap();
    let cdf = pred.cdf();
    let p_at_floor = iq_paths::pgos::guarantee::prob_of_service(&cdf, floor);
    assert!(p_at_floor >= 0.9);
    // A hair above the floor the probability may drop below 0.9 (the
    // floor is the tight inversion up to sample atoms).
    let p_above = iq_paths::pgos::guarantee::prob_of_service(&cdf, floor * 1.05);
    assert!(p_above <= p_at_floor);
}
