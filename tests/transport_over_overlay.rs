//! The transport ↔ overlay bridge: a RUDP connection whose channel
//! parameters come from an emulated overlay path (Figure 2's layering —
//! the IQ-RUDP socket module rides the same links the monitoring module
//! measures).

use iq_paths::overlay::path::OverlayPath;
use iq_paths::simnet::link::Link;
use iq_paths::simnet::time::{SimDuration, SimTime};
use iq_paths::simnet::EventQueue;
use iq_paths::transport::channel::{ChannelConfig, Transit};
use iq_paths::transport::rudp::{AckPacket, RudpConfig, Segment};
use iq_paths::transport::{LossyChannel, RudpReceiver, RudpSender};

fn overlay_path(loss: f64) -> OverlayPath {
    let a = Link::new("hop1", 100.0e6, SimDuration::from_millis(8)).with_loss(loss);
    let b = Link::new("hop2", 100.0e6, SimDuration::from_millis(12));
    OverlayPath::new(0, "wan", vec![a, b])
}

/// Builds the RUDP channel from the overlay path's measured properties.
fn channel_from_path(path: &OverlayPath, seed: u64) -> LossyChannel {
    LossyChannel::new(
        ChannelConfig {
            delay: path.prop_delay(),
            jitter: SimDuration::from_millis(1),
            loss: path.loss_prob(),
        },
        seed,
    )
}

fn transfer(path: &OverlayPath, n: u64, seed: u64) -> (Vec<u64>, RudpSender) {
    enum Ev {
        Seg(Segment),
        Ack(AckPacket),
        Tick,
    }
    let mut data = channel_from_path(path, seed);
    let mut acks = channel_from_path(path, seed ^ 0xff);
    let mut sender = RudpSender::new(RudpConfig::default());
    let mut receiver = RudpReceiver::new();
    let mut delivered = Vec::new();
    let mut q: EventQueue<Ev> = EventQueue::new();
    for _ in 0..n {
        sender.enqueue(1000);
    }
    q.schedule(SimTime::ZERO, Ev::Tick);
    let end = SimTime::from_secs_f64(300.0);
    while let Some((now, ev)) = q.pop_until(end) {
        match ev {
            Ev::Tick | Ev::Ack(_) => {
                if let Ev::Ack(a) = &ev {
                    sender.on_ack(a, now);
                }
                sender.on_tick(now);
                while let Some(seg) = sender.poll_transmit(now) {
                    if let Transit::ArrivesAt(at) = data.submit(now) {
                        q.schedule(at, Ev::Seg(seg));
                    }
                }
                if let Some(d) = sender.next_timeout() {
                    q.schedule(d.max(now), Ev::Tick);
                }
            }
            Ev::Seg(seg) => {
                let ack = receiver.on_segment(&seg);
                delivered.extend(receiver.take_delivered());
                if let Transit::ArrivesAt(at) = acks.submit(now) {
                    q.schedule(at, Ev::Ack(ack));
                }
            }
        }
        if sender.idle() {
            break;
        }
    }
    (delivered, sender)
}

#[test]
fn path_properties_flow_into_the_channel() {
    let path = overlay_path(0.05);
    assert_eq!(path.prop_delay(), SimDuration::from_millis(20));
    assert!((path.loss_prob() - 0.05).abs() < 1e-12);
    let ch = channel_from_path(&path, 1);
    assert_eq!(ch.config().delay, SimDuration::from_millis(20));
}

#[test]
fn rudp_masks_overlay_path_loss() {
    let path = overlay_path(0.08);
    let (delivered, sender) = transfer(&path, 500, 3);
    assert_eq!(delivered, (0..500).collect::<Vec<_>>());
    assert!(sender.retransmissions() > 0);
}

#[test]
fn rtt_estimate_matches_path_round_trip() {
    let path = overlay_path(0.0);
    let (_, sender) = transfer(&path, 200, 5);
    let srtt = sender.srtt().unwrap().as_secs_f64();
    // 20 ms each way + ≤1 ms jitter per direction.
    assert!((0.039..0.044).contains(&srtt), "srtt {srtt}");
}
