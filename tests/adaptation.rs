//! Runtime adaptation: PGOS must notice distribution shifts (the
//! "CDF changes dramatically" remap trigger) and migrate guaranteed
//! streams to paths that still satisfy them.

use iq_paths::apps::workload::FramedSource;
use iq_paths::middleware::runtime::{run, RuntimeConfig};
use iq_paths::overlay::path::OverlayPath;
use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
use iq_paths::pgos::stream::StreamSpec;
use iq_paths::simnet::link::Link;
use iq_paths::simnet::time::SimDuration;
use iq_paths::traces::{cbr, RateTrace};

/// Path whose cross traffic jumps from `before` to `after` Mbps at
/// `shift_at` seconds (absolute, including warm-up).
fn shifting_path(
    index: usize,
    before: f64,
    after: f64,
    shift_at: f64,
    horizon: f64,
) -> OverlayPath {
    let epoch = 0.1;
    let n = (horizon / epoch).ceil() as usize;
    let rates = (0..n)
        .map(|i| {
            if (i as f64 * epoch) < shift_at {
                before * 1.0e6
            } else {
                after * 1.0e6
            }
        })
        .collect();
    let link = Link::new(format!("l{index}"), 100.0e6, SimDuration::from_millis(1))
        .with_cross_traffic(RateTrace::new(epoch, rates));
    OverlayPath::new(index, format!("p{index}"), vec![link])
}

fn steady_path(index: usize, cross_mbps: f64, horizon: f64) -> OverlayPath {
    let link = Link::new(format!("l{index}"), 100.0e6, SimDuration::from_millis(1))
        .with_cross_traffic(cbr::constant(cross_mbps * 1.0e6, 0.1, horizon));
    OverlayPath::new(index, format!("p{index}"), vec![link])
}

#[test]
fn pgos_migrates_off_a_collapsing_path() {
    let warmup = 20.0;
    let duration = 60.0;
    let horizon = warmup + duration + 5.0;
    // Path 0 starts nearly idle, then collapses to 15 Mbps residual at
    // t = 20 s into the measurement; path 1 holds 60 Mbps throughout.
    let paths = vec![
        shifting_path(0, 20.0, 85.0, warmup + 20.0, horizon),
        steady_path(1, 40.0, horizon),
    ];
    let specs = vec![StreamSpec::probabilistic(0, "crit", 30.0e6, 0.9, 1250)];
    let frame = (30.0e6 / (8.0 * 25.0)) as u32;
    let w = FramedSource::new(specs.clone(), vec![frame], 25.0, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 2);
    let cfg = RuntimeConfig {
        warmup_secs: warmup,
        history_samples: 100, // short memory: adapt within a few windows
        ..Default::default()
    };
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg, duration);

    // Both paths carried substantial traffic (before/after the shift).
    assert!(
        report.path_sent_bytes[0] > 10_000_000,
        "{:?}",
        report.path_sent_bytes
    );
    assert!(
        report.path_sent_bytes[1] > 10_000_000,
        "{:?}",
        report.path_sent_bytes
    );
    // The guarantee survives the shift in all but the transition
    // windows (monitoring needs a few samples to see the collapse).
    let s = report.streams[0].summary();
    assert!(
        s.meet_fraction >= 0.85,
        "meet fraction {} too low across the shift",
        s.meet_fraction
    );
    // Steady state at the end: the last 10 windows are all on target.
    let tail =
        &report.streams[0].throughput_series[report.streams[0].throughput_series.len() - 10..];
    assert!(
        tail.iter().all(|&v| v >= 29.9e6),
        "tail windows below target: {tail:?}"
    );
}

#[test]
fn stable_network_never_migrates() {
    let warmup = 20.0;
    let duration = 30.0;
    let horizon = warmup + duration + 5.0;
    let paths = vec![steady_path(0, 30.0, horizon), steady_path(1, 30.0, horizon)];
    let specs = vec![StreamSpec::probabilistic(0, "crit", 20.0e6, 0.9, 1250)];
    let frame = (20.0e6 / (8.0 * 25.0)) as u32;
    let w = FramedSource::new(specs.clone(), vec![frame], 25.0, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 2);
    let cfg = RuntimeConfig {
        warmup_secs: warmup,
        ..Default::default()
    };
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg, duration);
    // All critical traffic on one path (affinity holds).
    let min_path = report.path_sent_bytes.iter().min().copied().unwrap();
    assert_eq!(min_path, 0, "traffic flapped: {:?}", report.path_sent_bytes);
    assert!(report.streams[0].summary().meet_fraction >= 0.99);
}
