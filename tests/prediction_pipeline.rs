//! The Figure 4 statistical claim, wired through the public crates: on
//! envelope-stable traces, percentile prediction fails rarely while
//! mean predictors carry substantial relative error; and the monitoring
//! module's CDFs drive correct admission decisions.

use iq_paths::prelude::*;
use iq_paths::stats::percentile::{evaluate_mean_prediction, evaluate_percentile_prediction};
use iq_paths::stats::predictors::standard_suite;
use iq_paths::traces::envelope::{available_bandwidth, EnvelopeConfig};

fn series(seed: u64) -> Vec<f64> {
    available_bandwidth(&EnvelopeConfig::default(), 0.1, 3000.0, seed)
        .rates()
        .to_vec()
}

#[test]
fn percentile_prediction_beats_mean_prediction() {
    for seed in [1, 2, 3] {
        let s = series(seed);
        let pct = evaluate_percentile_prediction(&s, 500, 5, 0.9);
        assert!(
            pct.failure_rate() < 0.08,
            "seed {seed}: percentile failure {}",
            pct.failure_rate()
        );
        for p in &mut standard_suite(32) {
            let err = evaluate_mean_prediction(&s, p.as_mut());
            assert!(
                err > 0.05,
                "seed {seed}: {} error {err} suspiciously low",
                p.name()
            );
        }
    }
}

#[test]
fn floor_is_a_valid_lemma1_input() {
    // Feed the series into the online predictor and verify the Lemma 1
    // probability of its own floor is ≥ the configured guarantee.
    let s = series(5);
    let mut pred = PercentilePredictor::new(500, 0.9);
    for (i, &bw) in s.iter().enumerate().take(800) {
        pred.observe(i as f64 * 0.1, bw);
    }
    let floor = pred.floor().unwrap();
    let cdf = pred.cdf();
    let p = iq_paths::pgos::guarantee::prob_of_service(&cdf, floor);
    assert!(p >= 0.9 - 1e-9, "P(bw >= floor) = {p}");
}

#[test]
fn monitoring_module_cdf_matches_offline_cdf() {
    use iq_paths::overlay::node::MonitoringModule;
    let s = series(6);
    let mut m = MonitoringModule::new(1, 500);
    for (i, &bw) in s.iter().enumerate().take(500) {
        m.observe_bandwidth(0, i as f64 * 0.1, bw);
    }
    let stats = m.stats(0);
    let offline = EmpiricalCdf::from_clean_samples(s[..500].to_vec());
    for q in [0.05, 0.1, 0.5, 0.9] {
        assert_eq!(stats.cdf.quantile(q), offline.quantile(q));
    }
}

#[test]
fn drift_detector_fires_on_regime_change_traces() {
    use iq_paths::stats::timeseries::DriftDetector;
    // Two glued regimes with very different floors.
    let a = available_bandwidth(
        &EnvelopeConfig {
            util_range: (0.3, 0.3),
            ..Default::default()
        },
        0.1,
        100.0,
        1,
    );
    let b = available_bandwidth(
        &EnvelopeConfig {
            util_range: (0.7, 0.7),
            ..Default::default()
        },
        0.1,
        100.0,
        2,
    );
    let mut d = DriftDetector::new(200, 0.3);
    let mut fired_in_a = false;
    for &x in a.rates() {
        fired_in_a |= d.observe(x);
    }
    assert!(!fired_in_a, "false positive within a single regime");
    let mut fired_in_b = false;
    for &x in b.rates() {
        fired_in_b |= d.observe(x);
    }
    assert!(fired_in_b, "missed a 40-point utilization shift");
}
