//! The probabilistic-guarantee semantics, end to end: a stream admitted
//! at probability `p` must receive its bandwidth in at least ≈ `p` of
//! scheduling windows, and the admission upcall must fire when the
//! network cannot support the request.

use iq_paths::apps::workload::FramedSource;
use iq_paths::middleware::runtime::{run, RuntimeConfig};
use iq_paths::overlay::path::OverlayPath;
use iq_paths::pgos::mapping::Upcall;
use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
use iq_paths::pgos::stream::StreamSpec;
use iq_paths::simnet::link::Link;
use iq_paths::simnet::time::SimDuration;
use iq_paths::traces::envelope::{available_bandwidth, EnvelopeConfig};
use iq_paths::traces::RateTrace;

fn envelope_path(index: usize, util: (f64, f64), seed: u64, horizon: f64) -> OverlayPath {
    // Build cross traffic whose residual is the envelope model: cross =
    // capacity − available.
    let cap = 100.0e6;
    let avail = available_bandwidth(
        &EnvelopeConfig {
            capacity: cap,
            util_range: util,
            ..Default::default()
        },
        0.1,
        horizon,
        seed,
    );
    let cross = RateTrace::new(
        0.1,
        avail.rates().iter().map(|a| (cap - a).max(0.0)).collect(),
    );
    let link =
        Link::new(format!("l{index}"), cap, SimDuration::from_millis(1)).with_cross_traffic(cross);
    OverlayPath::new(index, format!("p{index}"), vec![link])
}

fn cfg() -> RuntimeConfig {
    RuntimeConfig {
        warmup_secs: 30.0,
        ..Default::default()
    }
}

fn workload(specs: Vec<StreamSpec>, rate: f64, duration: f64) -> FramedSource {
    let frame = (rate / (8.0 * 25.0)).round() as u32;
    FramedSource::new(specs, vec![frame], 25.0, duration)
}

#[test]
fn admitted_stream_meets_its_probability() {
    let duration = 60.0;
    let paths = vec![
        envelope_path(0, (0.3, 0.4), 5, 100.0),
        envelope_path(1, (0.5, 0.6), 6, 100.0),
    ];
    // 30 Mbps at p = 0.9: fits the stronger path's floor (≥ 60 Mbps).
    let specs = vec![StreamSpec::probabilistic(0, "s", 30.0e6, 0.9, 1250)];
    let w = workload(specs.clone(), 30.0e6, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 2);
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg(), duration);
    assert!(report.upcalls.is_empty(), "{:?}", report.upcalls);
    let s = report.streams[0].summary();
    assert!(
        s.meet_fraction >= 0.9,
        "admitted at p=0.9 but met only {} of windows",
        s.meet_fraction
    );
}

#[test]
fn infeasible_stream_raises_upcall_with_diagnosis() {
    let duration = 30.0;
    let paths = vec![envelope_path(0, (0.7, 0.7), 5, 80.0)];
    // 80 Mbps cannot fit a path whose floor is ~30 Mbps.
    let specs = vec![StreamSpec::probabilistic(0, "big", 80.0e6, 0.95, 1250)];
    let w = workload(specs.clone(), 80.0e6, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 1);
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg(), duration);
    assert!(!report.upcalls.is_empty());
    let Upcall::StreamRejected {
        requested_bps,
        achievable_p,
        ..
    } = &report.upcalls[0];
    assert!(*requested_bps >= 80.0e6);
    assert!(*achievable_p < 0.95);
}

#[test]
fn rejected_stream_still_flows_best_effort() {
    let duration = 30.0;
    let paths = vec![envelope_path(0, (0.6, 0.6), 7, 80.0)];
    let specs = vec![StreamSpec::probabilistic(0, "big", 90.0e6, 0.95, 1250)];
    let w = workload(specs.clone(), 90.0e6, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 1);
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg(), duration);
    // Not admitted — but Table 1 rule 3 still ships packets with the
    // leftover bandwidth.
    assert!(!report.upcalls.is_empty());
    assert!(report.streams[0].delivered_packets > 0);
}

#[test]
fn violation_bound_stream_bounds_misses() {
    let duration = 60.0;
    let paths = vec![envelope_path(0, (0.3, 0.4), 9, 100.0)];
    // Allow at most 5 expected misses per 1-second window out of
    // x = 2000 packets (20 Mbps / 1250 B).
    let specs = vec![StreamSpec::violation_bound(0, "vb", 20.0e6, 5.0, 1250)];
    let w = workload(specs.clone(), 20.0e6, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 1);
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg(), duration);
    assert!(report.upcalls.is_empty(), "{:?}", report.upcalls);
    let s = &report.streams[0];
    // 5/2000 = 0.25% allowed expected misses; measured rate must be of
    // that order (generous 4x factor for finite-sample noise).
    assert!(
        s.deadline_miss_rate <= 0.01,
        "miss rate {} blows the violation bound",
        s.deadline_miss_rate
    );
}

#[test]
fn partial_service_stream_admits_where_full_service_cannot() {
    let duration = 40.0;
    // Floor around 100·(1−0.65) = 35 Mbps.
    let paths = vec![envelope_path(0, (0.6, 0.65), 15, 90.0)];
    // Offered 60 Mbps cannot be fully guaranteed on a ~35 Mbps floor;
    // guaranteeing half of it (30 Mbps) fits.
    let full = vec![StreamSpec::probabilistic(0, "full", 60.0e6, 0.9, 1250)];
    let partial =
        vec![StreamSpec::probabilistic(0, "half", 60.0e6, 0.9, 1250).with_service_fraction(0.5)];

    let w_full = workload(full.clone(), 60.0e6, duration);
    let r_full = run(
        &paths,
        Box::new(w_full),
        Box::new(Pgos::new(PgosConfig::default(), full, 1)),
        cfg(),
        duration,
    );
    assert!(
        !r_full.upcalls.is_empty(),
        "full-service 60 Mbps must reject"
    );

    let w_half = workload(partial.clone(), 60.0e6, duration);
    let r_half = run(
        &paths,
        Box::new(w_half),
        Box::new(Pgos::new(PgosConfig::default(), partial, 1)),
        cfg(),
        duration,
    );
    assert!(
        r_half.upcalls.is_empty(),
        "DWCS half-service must be admissible: {:?}",
        r_half.upcalls
    );
    // The guaranteed half arrives in ≥ 90% of windows.
    let meets = r_half.streams[0]
        .throughput_series
        .iter()
        .filter(|&&v| v >= 30.0e6)
        .count() as f64
        / r_half.streams[0].throughput_series.len() as f64;
    assert!(
        meets >= 0.9,
        "guaranteed half met in only {meets} of windows"
    );
}

#[test]
fn guaranteed_stream_is_protected_from_best_effort_pressure() {
    let duration = 40.0;
    let paths = vec![
        envelope_path(0, (0.4, 0.5), 11, 90.0),
        envelope_path(1, (0.5, 0.7), 12, 90.0),
    ];
    let specs = vec![
        StreamSpec::probabilistic(0, "crit", 25.0e6, 0.95, 1250),
        StreamSpec::best_effort(1, "bulk", 120.0e6, 1250),
    ];
    let crit_frame = (25.0e6 / (8.0 * 25.0)) as u32;
    let bulk_frame = (120.0e6 / (8.0 * 25.0)) as u32;
    let w = FramedSource::new(specs.clone(), vec![crit_frame, bulk_frame], 25.0, duration);
    let pgos = Pgos::new(PgosConfig::default(), specs, 2);
    let report = run(&paths, Box::new(w), Box::new(pgos), cfg(), duration);
    let s = report.streams[0].summary();
    assert!(
        s.meet_fraction >= 0.9,
        "critical stream crushed by bulk: meet {}",
        s.meet_fraction
    );
    // The bulk stream sheds load at its queue instead.
    assert!(report.streams[1].mean_throughput() < 120.0e6);
}
