//! Diversity-vs-PGOS conformance matrix: `{pgos, diversity} mappings ×
//! {flap, blackout, churn, uncorrelated, correlated} scenarios`.
//!
//! Each case asserts three things:
//!
//! * **Verdicts** — the `Diversity` mapping keeps the Lemma 1/2
//!   guarantees in every scenario where its premise holds (silent,
//!   uncorrelated loss; capacity faults settle out within the standard
//!   transient). The classic mapping is executed alongside for the
//!   ratio comparison but is only gated where it is expected to hold.
//! * **The headline ratio** — on the `uncorrelated` rotation (one path
//!   silently dead at all times) the coded mapping's
//!   delivered-before-deadline ratio must beat the classic mapping's
//!   by a clear margin, while on the `correlated` all-path black hole
//!   the classic mapping must win or tie: no coding shape decodes
//!   through the loss of every lane at once, so Diversity's extra
//!   parity buys nothing there (DESIGN.md §15, docs/POLICIES.md).
//! * **Serial ≡ sharded byte-equality** — on the 4-shard data plane
//!   the serial and parallel worker-execution strategies must produce
//!   byte-identical conformance reports for the coded mapping. A
//!   divergence writes both renderings under
//!   `target/experiments/diversity/` for CI upload before failing.

use iqpaths_core::mapping::MappingMode;
use iqpaths_middleware::ShardExecution;
use iqpaths_overlay::node::CdfMode;
use iqpaths_testkit::{
    run_conformance, run_conformance_with, ConformanceConfig, ConformanceReport, FaultScenario,
};
use std::path::PathBuf;

/// Pinned seed, matching the conformance job.
const SEED: u64 = 11;

/// Margin by which Diversity must beat the classic mapping on the
/// uncorrelated rotation (the dead path costs uncoded placement far
/// more than this; coding recovers it entirely).
const WIN_MARGIN: f64 = 0.05;

/// Tie tolerance for the correlated black hole (both mappings lose the
/// same blacked-out windows; only sub-percent queueing noise differs).
const TIE_MARGIN: f64 = 0.02;

fn case(scenario: FaultScenario, mapping: MappingMode) -> ConformanceConfig {
    ConformanceConfig {
        duration: 60.0,
        warmup: 10.0,
        ..ConformanceConfig::new(SEED, CdfMode::Exact, scenario)
    }
    .with_mapping(mapping)
}

fn artifact_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/target/experiments/diversity"
    ))
}

/// Byte-compares the serial- and parallel-execution renderings of one
/// sharded case, dumping both under `target/experiments/diversity/` on
/// divergence.
fn assert_strategy_byte_equality(label: &str, a: &ConformanceReport, b: &ConformanceReport) {
    let (sa, sb) = (format!("{:#?}", a.report), format!("{:#?}", b.report));
    if sa != sb || a.probe_counts != b.probe_counts {
        let dir = artifact_dir();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{label}.serial.txt")), &sa).unwrap();
        std::fs::write(dir.join(format!("{label}.parallel.txt")), &sb).unwrap();
        panic!(
            "{label}: serial and parallel worker execution diverged \
             (renderings dumped under {})",
            dir.display()
        );
    }
}

fn assert_all_pass(label: &str, report: &ConformanceReport) {
    for o in &report.outcomes {
        assert!(
            o.pass,
            "{label}: {}/{} failed (observed {:.3}, target {:.3}, ε {:.3})",
            o.stream, o.kind, o.observed, o.target, o.epsilon
        );
    }
}

/// Coded-vs-classic pair for one scenario, with the coded run's coding
/// stats sanity-checked (both guaranteed streams striped (3, 2), parity
/// actually synthesized).
fn run_pair(scenario: FaultScenario) -> (ConformanceReport, ConformanceReport) {
    let classic = run_conformance(case(scenario, MappingMode::Pgos));
    let coded = run_conformance(case(scenario, MappingMode::Diversity));
    let label = scenario.name();
    assert!(
        classic.report.streams.iter().all(|s| s.coding.is_none()),
        "{label}: classic mapping must stay uncoded"
    );
    for name in ["prob", "vbound"] {
        let c = coded
            .report
            .stream(name)
            .and_then(|s| s.coding.as_ref())
            .unwrap_or_else(|| panic!("{label}: {name} must carry coding stats"));
        assert_eq!((c.n, c.k), (3, 2), "{label}: {name} group shape");
        assert!(c.parity_sent > 0, "{label}: {name} synthesized no parity");
        assert!(c.groups_decoded > 0, "{label}: {name} decoded no groups");
    }
    assert!(
        coded
            .report
            .stream("bulk")
            .is_some_and(|s| s.coding.is_none()),
        "{label}: best-effort streams stay uncoded"
    );
    (classic, coded)
}

#[test]
fn diversity_wins_the_uncorrelated_rotation() {
    let (classic, coded) = run_pair(FaultScenario::Uncorrelated);
    // Transit loss is invisible to capacity monitoring, so every
    // window is eligible and the guarantees are checked across the
    // whole rotation. The coded mapping must hold both lemmas.
    assert_all_pass("uncorrelated/diversity", &coded);
    for i in [0, 1] {
        assert!(
            coded.before_deadline[i] > classic.before_deadline[i] + WIN_MARGIN,
            "stream {i}: diversity {:.3} must beat pgos {:.3} by {WIN_MARGIN}",
            coded.before_deadline[i],
            classic.before_deadline[i],
        );
    }
    // The rotation kills one path at all times; uncoded placement
    // cannot dodge silent loss and visibly bleeds data.
    assert!(
        classic.before_deadline[0] < 0.9,
        "pgos unexpectedly survived the rotation: {:.3}",
        classic.before_deadline[0]
    );
    // Coding recovers essentially everything: any single dead lane is
    // reconstructed from the other two.
    assert!(
        coded.before_deadline[0] > 0.95,
        "diversity ratio {:.3}",
        coded.before_deadline[0]
    );
}

#[test]
fn pgos_wins_or_ties_the_correlated_black_hole() {
    let (classic, coded) = run_pair(FaultScenario::Correlated);
    for i in [0, 1] {
        assert!(
            classic.before_deadline[i] + TIE_MARGIN >= coded.before_deadline[i],
            "stream {i}: pgos {:.3} must win or tie diversity {:.3}",
            classic.before_deadline[i],
            coded.before_deadline[i],
        );
    }
    // Both lose the two 6 s black holes and nothing else.
    assert!(classic.before_deadline[0] < 0.95);
    assert!(coded.before_deadline[0] < 0.95);
}

#[test]
fn diversity_holds_guarantees_under_capacity_faults() {
    // The classic fault trio: capacity faults settle within the
    // standard transient, after which the structural coded mapping
    // must keep Lemma 1/2 without remapping.
    for scenario in [
        FaultScenario::Flap,
        FaultScenario::Blackout,
        FaultScenario::Churn,
    ] {
        let (_, coded) = run_pair(scenario);
        assert_all_pass(&format!("{}/diversity", scenario.name()), &coded);
    }
}

#[test]
fn diversity_serial_and_parallel_workers_agree_bitwise() {
    for scenario in [
        FaultScenario::Uncorrelated,
        FaultScenario::Correlated,
        FaultScenario::Flap,
    ] {
        let cfg = case(scenario, MappingMode::Diversity).with_shards(4);
        let a = run_conformance_with(cfg, ShardExecution::Serial);
        let b = run_conformance_with(cfg, ShardExecution::Parallel);
        assert_strategy_byte_equality(&format!("{}-diversity-4", scenario.name()), &a, &b);
    }
}
