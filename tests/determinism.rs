//! Reproducibility: identical seeds must give bit-identical reports;
//! different seeds must actually change the emulated network.

use iq_paths::apps::smartpointer::SmartPointerConfig;
use iq_paths::middleware::builder::{Figure8Experiment, SchedulerKind};

fn run(seed: u64) -> iq_paths::middleware::report::RunReport {
    let mut e = Figure8Experiment::new(seed, 15.0);
    e.runtime.warmup_secs = 10.0;
    e.run_smartpointer(SmartPointerConfig::default(), SchedulerKind::Pgos)
        .report
}

#[test]
fn identical_seed_identical_report() {
    let a = run(9);
    let b = run(9);
    assert_eq!(a.events, b.events);
    for (sa, sb) in a.streams.iter().zip(&b.streams) {
        assert_eq!(sa.throughput_series, sb.throughput_series);
        assert_eq!(sa.delivered_packets, sb.delivered_packets);
        assert_eq!(sa.per_path_series, sb.per_path_series);
    }
    assert_eq!(a.path_sent_bytes, b.path_sent_bytes);
}

#[test]
fn different_seed_changes_the_network() {
    let a = run(9);
    let b = run(10);
    // Same workload, different cross traffic: per-path byte splits (or
    // at least some series) must differ.
    assert!(
        a.path_sent_bytes != b.path_sent_bytes
            || a.streams[2].throughput_series != b.streams[2].throughput_series,
        "seeds 9 and 10 produced identical runs"
    );
}

#[test]
fn schedulers_share_the_same_emulated_network() {
    // With the same seed, the ground-truth path residuals are identical
    // across scheduler runs — so total delivered bytes may differ but
    // the environment is controlled. Proxy check: two different
    // schedulers see identical cross-traffic (their reports are
    // deterministic function of the seed).
    let mut e = Figure8Experiment::new(11, 15.0);
    e.runtime.warmup_secs = 10.0;
    let app = SmartPointerConfig::default();
    let m1 = e.run_smartpointer(app, SchedulerKind::Msfq).report;
    let m2 = e.run_smartpointer(app, SchedulerKind::Msfq).report;
    assert_eq!(m1.events, m2.events);
    assert_eq!(
        m1.streams[0].throughput_series,
        m2.streams[0].throughput_series
    );
}
