//! Reproducibility: identical seeds must give bit-identical reports;
//! different seeds must actually change the emulated network.

use iq_paths::apps::smartpointer::SmartPointerConfig;
use iq_paths::middleware::builder::{Figure8Experiment, SchedulerKind};

fn run(seed: u64) -> iq_paths::middleware::report::RunReport {
    let mut e = Figure8Experiment::new(seed, 15.0);
    e.runtime.warmup_secs = 10.0;
    e.run_smartpointer(SmartPointerConfig::default(), SchedulerKind::Pgos)
        .report
}

#[test]
fn identical_seed_identical_report() {
    let a = run(9);
    let b = run(9);
    assert_eq!(a.events, b.events);
    for (sa, sb) in a.streams.iter().zip(&b.streams) {
        assert_eq!(sa.throughput_series, sb.throughput_series);
        assert_eq!(sa.delivered_packets, sb.delivered_packets);
        assert_eq!(sa.per_path_series, sb.per_path_series);
    }
    assert_eq!(a.path_sent_bytes, b.path_sent_bytes);
}

#[test]
fn different_seed_changes_the_network() {
    let a = run(9);
    let b = run(10);
    // Same workload, different cross traffic: per-path byte splits (or
    // at least some series) must differ.
    assert!(
        a.path_sent_bytes != b.path_sent_bytes
            || a.streams[2].throughput_series != b.streams[2].throughput_series,
        "seeds 9 and 10 produced identical runs"
    );
}

#[test]
fn identical_fault_schedule_is_bit_identical_across_cdf_modes() {
    // Fault-injection determinism regression: the same seed and the
    // same FaultSchedule must reproduce the RunReport bit for bit, for
    // every CDF backend the conformance suite sweeps. Probe-loss draws,
    // reorder jitter, compiled capacity faults, and blocked-path
    // backoff all derive from the seed — nothing may read ambient
    // entropy.
    use iq_paths::overlay::node::CdfMode;
    use iq_paths::overlay::path::OverlayPath;
    use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
    use iq_paths::pgos::stream::StreamSpec;
    use iq_paths::simnet::fault::{Fault, FaultSchedule};
    use iq_paths::simnet::link::Link;
    use iq_paths::simnet::time::SimDuration;
    use iq_paths::traces::RateTrace;

    let faulted_run = |mode: CdfMode| {
        let epoch = 0.1f64;
        let horizon = 40.0f64;
        let n = (horizon / epoch).ceil() as usize;
        let paths: Vec<OverlayPath> = (0..2)
            .map(|j| {
                let cross = RateTrace::new(epoch, vec![(10.0 + 5.0 * j as f64) * 1.0e6; n]);
                let link = Link::new(format!("l{j}"), 60.0e6, SimDuration::from_millis(2))
                    .with_cross_traffic(cross);
                OverlayPath::new(j, format!("p{j}"), vec![link])
            })
            .collect();
        let mut faults = FaultSchedule::new();
        faults.blackout(0, 18.0, 24.0);
        faults.push(12.0, Fault::ProbeLoss { path: 1, prob: 0.4 });
        faults.push(
            20.0,
            Fault::ReorderBurst {
                path: 1,
                span: 2.0,
                jitter: 0.001,
            },
        );
        let specs = vec![StreamSpec::probabilistic(0, "s", 12.0e6, 0.9, 1250)];
        let frame = (12.0e6 / (8.0 * 25.0)) as u32;
        let w = iq_paths::apps::workload::FramedSource::new(specs.clone(), vec![frame], 25.0, 25.0);
        let pgos = Pgos::new(PgosConfig::default(), specs, 2);
        let cfg = iq_paths::middleware::runtime::RuntimeConfig {
            warmup_secs: 10.0,
            history_samples: 100,
            seed: 77,
            cdf_mode: mode,
            ..Default::default()
        };
        iq_paths::middleware::runtime::run_faulted(
            &paths,
            Box::new(w),
            Box::new(pgos),
            cfg,
            25.0,
            &faults,
            &mut |_| {},
        )
    };

    for mode in [
        CdfMode::Exact,
        CdfMode::Rolling,
        CdfMode::Sketch { markers: 33 },
    ] {
        let a = faulted_run(mode);
        let b = faulted_run(mode);
        assert_eq!(a.events, b.events, "{mode:?}");
        assert_eq!(a.path_sent_bytes, b.path_sent_bytes, "{mode:?}");
        assert_eq!(a.path_blocked_events, b.path_blocked_events, "{mode:?}");
        assert_eq!(a.upcalls, b.upcalls, "{mode:?}");
        for (sa, sb) in a.streams.iter().zip(&b.streams) {
            assert_eq!(sa.throughput_series, sb.throughput_series, "{mode:?}");
            assert_eq!(sa.delivered_packets, sb.delivered_packets, "{mode:?}");
            assert_eq!(sa.deadline_misses, sb.deadline_misses, "{mode:?}");
            assert_eq!(sa.per_path_series, sb.per_path_series, "{mode:?}");
        }
        // The faults really bit: path 0 saw blocking, and probe-loss
        // draws on path 1 are part of the reproduced state.
        assert!(a.path_blocked_events[0] > 0, "{mode:?}");
    }
}

#[test]
fn schedulers_share_the_same_emulated_network() {
    // With the same seed, the ground-truth path residuals are identical
    // across scheduler runs — so total delivered bytes may differ but
    // the environment is controlled. Proxy check: two different
    // schedulers see identical cross-traffic (their reports are
    // deterministic function of the seed).
    let mut e = Figure8Experiment::new(11, 15.0);
    e.runtime.warmup_secs = 10.0;
    let app = SmartPointerConfig::default();
    let m1 = e.run_smartpointer(app, SchedulerKind::Msfq).report;
    let m2 = e.run_smartpointer(app, SchedulerKind::Msfq).report;
    assert_eq!(m1.events, m2.events);
    assert_eq!(
        m1.streams[0].throughput_series,
        m2.streams[0].throughput_series
    );
}
