//! Statistical guarantee-conformance suite.
//!
//! Sweeps {Exact, Rolling, Sketch} CDF backends × {no-fault, flap,
//! blackout, churn} fault scenarios and asserts that PGOS keeps Lemma 1
//! (per-window delivery probability ≥ p) and Lemma 2 (expected deadline
//! violations per window ≤ bound) within explicit Hoeffding confidence
//! tolerances — so a conformant implementation fails each check with
//! probability at most 1%, and in practice never, since every run is
//! seeded and deterministic.
//!
//! Seeds are pinned (CI runs this suite as a separate job). If a case
//! fails, reproduce it with
//! `run_conformance(ConformanceConfig::new(SEED, mode, scenario))`.

use iqpaths_overlay::node::CdfMode;
use iqpaths_testkit::{run_conformance, sweep_modes, ConformanceConfig, FaultScenario};

/// Pinned conformance seed (see CI's conformance job).
const SEED: u64 = 11;

/// Runs all four scenarios under one CDF backend, asserting lemma
/// conformance and fault observability.
fn sweep(mode: CdfMode) {
    let mut faulted_passes = 0;
    for scenario in FaultScenario::ALL {
        let r = run_conformance(ConformanceConfig::new(SEED, mode, scenario));
        assert!(
            r.all_pass(),
            "{} / {} failed conformance:\n{}",
            r.mode,
            r.scenario,
            r.table_rows()
        );
        assert!(
            !r.eligible_windows.is_empty(),
            "{}: no eligible windows",
            r.scenario
        );
        // The guaranteed demand is sized to stay feasible through every
        // scenario, so admission control must never renegotiate.
        assert!(
            r.report.upcalls.is_empty(),
            "{}: unexpected upcalls {:?}",
            r.scenario,
            r.report.upcalls
        );
        // Observability: the injected faults really reached the
        // blocked-path machinery (and only on the faulted paths).
        match scenario {
            FaultScenario::NoFault => {
                assert!(r.report.path_blocked_events.iter().all(|&b| b == 0));
            }
            FaultScenario::Flap | FaultScenario::Blackout => {
                assert!(r.report.path_blocked_events[0] > 0);
                assert_eq!(r.report.path_blocked_events[2], 0);
                faulted_passes += 1;
            }
            FaultScenario::Churn => {
                assert!(r.report.path_blocked_events[0] > 0);
                assert!(r.report.path_blocked_events[1] > 0);
                assert_eq!(r.report.path_blocked_events[2], 0);
                faulted_passes += 1;
            }
            // The silent-loss pair lives in FaultScenario::LOSSY, not
            // ALL; this sweep never reaches it (see the diversity
            // conformance suite for its matrix).
            FaultScenario::Uncorrelated | FaultScenario::Correlated => {
                unreachable!("LOSSY scenarios are not in FaultScenario::ALL")
            }
        }
    }
    // The acceptance bar: ≥ 3 fault scenarios conformant per mode.
    assert!(faulted_passes >= 3, "only {faulted_passes} fault scenarios");
}

#[test]
fn exact_mode_conforms() {
    sweep(CdfMode::Exact);
}

#[test]
fn rolling_mode_conforms() {
    sweep(CdfMode::Rolling);
}

#[test]
fn sketch_mode_conforms() {
    sweep(CdfMode::Sketch { markers: 33 });
}

#[test]
fn sweep_covers_the_three_backends() {
    let names: Vec<&str> = sweep_modes()
        .into_iter()
        .map(iqpaths_testkit::mode_name)
        .collect();
    assert_eq!(names, vec!["exact", "rolling", "sketch"]);
}

#[test]
fn conformance_holds_on_a_second_topology() {
    // Same checks on an independently drawn topology: the guarantee is
    // a property of the scheduler, not of one lucky capacity draw.
    for scenario in [FaultScenario::Blackout, FaultScenario::Churn] {
        let r = run_conformance(ConformanceConfig::new(29, CdfMode::Exact, scenario));
        assert!(
            r.all_pass(),
            "seed 29 / {} failed:\n{}",
            r.scenario,
            r.table_rows()
        );
    }
}

#[test]
fn conformance_is_deterministic_per_case() {
    let case = || {
        run_conformance(ConformanceConfig::new(
            SEED,
            CdfMode::Rolling,
            FaultScenario::Blackout,
        ))
    };
    let a = case();
    let b = case();
    assert_eq!(a.eligible_windows, b.eligible_windows);
    assert_eq!(a.report.events, b.report.events);
    assert_eq!(a.report.path_sent_bytes, b.report.path_sent_bytes);
    assert_eq!(a.report.path_blocked_events, b.report.path_blocked_events);
    assert_eq!(a.table_rows(), b.table_rows());
}
