//! The pub/sub layer end-to-end over the runtime: channels lower to
//! streams, derived channels filter, and the guaranteed subscription is
//! protected from the best-effort one — the §3 "model-neutral" claim.

use iq_paths::middleware::pubsub::{Event, PubSubSystem, Subscription};
use iq_paths::middleware::runtime::{run, RuntimeConfig};
use iq_paths::overlay::path::OverlayPath;
use iq_paths::pgos::scheduler::{Pgos, PgosConfig};
use iq_paths::pgos::stream::Guarantee;
use iq_paths::simnet::link::Link;
use iq_paths::simnet::time::SimDuration;
use iq_paths::traces::cbr;

fn schedule(duration: f64) -> Vec<Event> {
    let fps = 25.0;
    let mut out = Vec::new();
    for k in 0..(duration * fps) as u64 {
        let at = k as f64 / fps;
        out.push(Event {
            at,
            bytes: 50_000, // 10 Mbps critical feed
            tag: 0,
        });
        out.push(Event {
            at,
            bytes: 400_000, // 80 Mbps bulk feed
            tag: 1,
        });
    }
    out
}

fn paths(horizon: f64) -> Vec<OverlayPath> {
    let mk = |i: usize, cross: f64| {
        let link = Link::new(format!("l{i}"), 100.0e6, SimDuration::from_millis(1))
            .with_cross_traffic(cbr::constant(cross * 1.0e6, 0.1, horizon));
        OverlayPath::new(i, format!("p{i}"), vec![link])
    };
    vec![mk(0, 50.0), mk(1, 60.0)]
}

#[test]
fn guaranteed_subscription_survives_bulk_pressure() {
    let duration = 20.0;
    let mut ps = PubSubSystem::new();
    let ch = ps.channel(schedule(duration));
    ps.subscribe(
        Subscription::full(ch, "viz", Guarantee::Probabilistic { p: 0.9 }, 10.0e6, 1250)
            .derived(|e| e.tag == 0),
    );
    ps.subscribe(
        Subscription::full(ch, "bulk", Guarantee::BestEffort, 0.0, 1250).derived(|e| e.tag == 1),
    );
    let specs = ps.stream_specs();
    let workload = ps.into_workload();
    let cfg = RuntimeConfig {
        warmup_secs: 10.0,
        ..Default::default()
    };
    let pgos = Pgos::new(PgosConfig::default(), specs, 2);
    let horizon = cfg.warmup_secs + duration + 5.0;
    let report = run(
        &paths(horizon),
        Box::new(workload),
        Box::new(pgos),
        cfg,
        duration,
    );

    assert!(report.upcalls.is_empty(), "{:?}", report.upcalls);
    let viz = report.streams[0].summary();
    assert!(
        viz.meet_fraction >= 0.9,
        "guaranteed subscription met only {}",
        viz.meet_fraction
    );
    // The bulk feed offers 80 Mbps into ~90 Mbps of joint residual
    // minus the viz reservation: it must shed, not starve.
    let bulk = &report.streams[1];
    assert!(bulk.mean_throughput() > 20.0e6);
    assert!(bulk.mean_throughput() < 80.0e6);
}

#[test]
fn transformed_subscription_scales_delivered_volume() {
    let duration = 10.0;
    let mut ps = PubSubSystem::new();
    let ch = ps.channel(schedule(duration));
    ps.subscribe(
        Subscription::full(ch, "full", Guarantee::BestEffort, 0.0, 1250).derived(|e| e.tag == 0),
    );
    ps.subscribe(
        Subscription::full(ch, "thumb", Guarantee::BestEffort, 0.0, 1250)
            .derived(|e| e.tag == 0)
            .transformed(0.25),
    );
    let specs = ps.stream_specs();
    let workload = ps.into_workload();
    let cfg = RuntimeConfig {
        warmup_secs: 10.0,
        ..Default::default()
    };
    let pgos = Pgos::new(PgosConfig::default(), specs, 2);
    let horizon = cfg.warmup_secs + duration + 5.0;
    let report = run(
        &paths(horizon),
        Box::new(workload),
        Box::new(pgos),
        cfg,
        duration,
    );
    let full = report.streams[0].delivered_bytes as f64;
    let thumb = report.streams[1].delivered_bytes as f64;
    assert!(
        (thumb / full - 0.25).abs() < 0.02,
        "transform ratio {}",
        thumb / full
    );
}
