//! Golden decision trace for the graph-scale scenario family, plus
//! pinned generator hashes.
//!
//! One 64-node / 16-tenant Waxman case serializes its decision-level
//! trace (all tenants concatenated in tenant order, stream ids remapped
//! to `tenant · STREAMS_PER_TENANT + local`) and diffs it against
//! `tests/golden/scalability_waxman.jsonl`. Any change to graph
//! generation, Yen's path enumeration order, contention compilation or
//! the scheduler's decisions shows up as a readable line diff; refresh
//! intended changes with `UPDATE_GOLDEN=1 cargo test --test
//! golden_scalability` and review the diff in the commit.
//!
//! The generator-determinism test pins the `GraphGen` hash for both
//! wiring models at both matrix scales: a drifting hash means the
//! random-graph family silently changed under every consumer — the
//! sweep tables, the conformance matrix and this golden file.

use iqpaths_testkit::{
    check_golden_trace, run_scalability_traced, GraphGen, GraphModel, ScalabilityConfig,
    STREAMS_PER_TENANT,
};

/// Pinned seed, matching the conformance matrix.
const SEED: u64 = 2024;

/// The refresh command cited by divergence panics.
const REFRESH: &str = "cargo test --test golden_scalability";

fn golden_case() -> ScalabilityConfig {
    ScalabilityConfig {
        duration: 12.0,
        warmup: 3.0,
        settle_secs: 3.0,
        ..ScalabilityConfig::new(SEED, GraphModel::by_name("waxman").unwrap(), 64, 16, 2)
    }
}

#[test]
fn golden_scalability_waxman_decision_trace() {
    let (report, events) = run_scalability_traced(golden_case());
    assert!(
        report.all_pass(),
        "failing tenants: {:?}",
        report.failing_tenants()
    );
    check_golden_trace("scalability_waxman.jsonl", REFRESH, &events);
}

#[test]
fn traced_streams_cover_every_tenant() {
    let (report, events) = run_scalability_traced(golden_case());
    let tenants = report.tenants.len();
    // Global ids partition into per-tenant blocks of STREAMS_PER_TENANT;
    // every tenant's block must appear in the trace.
    let mut seen = vec![false; tenants];
    for s in events.iter().filter_map(|e| e.stream()) {
        let t = s as usize / STREAMS_PER_TENANT;
        assert!(t < tenants, "stream id {s} out of range");
        seen[t] = true;
    }
    assert!(
        seen.iter().all(|&b| b),
        "tenant missing from trace: {seen:?}"
    );
}

#[test]
fn generator_hashes_are_pinned() {
    // Frozen: a change here invalidates every recorded scalability
    // experiment and golden trace. Regenerate deliberately (and refresh
    // the goldens + EXPERIMENTS.md tables) or not at all.
    for (model, nodes, hash, edges) in [
        ("waxman", 64usize, 0xe3a5_965f_e0f3_0756_u64, 397usize),
        ("waxman", 256, 0xf416_cfde_fec4_8aac, 5985),
        ("ba", 64, 0xdb59_7ba6_7b35_2ed4, 125),
        ("ba", 256, 0x936d_0bb1_3593_3c34, 509),
    ] {
        let g = GraphGen {
            seed: SEED,
            nodes,
            model: GraphModel::by_name(model).unwrap(),
            ..GraphGen::default()
        }
        .build();
        assert_eq!(
            g.graph_hash(),
            hash,
            "{model}/{nodes}n generator drifted (got {:#018x})",
            g.graph_hash()
        );
        assert_eq!(g.edges.len(), edges, "{model}/{nodes}n edge count drifted");
    }
}
