//! Trace-driven invariant matrix: {no-fault, flap, blackout, churn} ×
//! {exact, rolling, sketch} CDF backends.
//!
//! Each case replays the conformance scenario with an in-memory
//! decision trace attached and checks the five exact invariants
//! (`iqpaths_testkit::invariants`): packet conservation, per-window
//! virtual-deadline monotonicity, Table 1 precedence at dispatch,
//! exponential-backoff doubling to the 1 s cap, and
//! monitoring-before-mapping freshness. Unlike the statistical
//! conformance suite these properties admit no tolerance — a single
//! violating event fails the case with the offending trace line.

use iqpaths_overlay::node::CdfMode;
use iqpaths_testkit::{
    assert_invariants, run_conformance_traced, sweep_modes, ConformanceConfig, FaultScenario,
};
use iqpaths_trace::TraceEvent;

/// Pinned seed, matching the conformance job.
const SEED: u64 = 11;

/// Shorter-than-conformance case: the invariants are exact, so they
/// don't need the statistical power of the full 120 s runs.
fn quick_case(mode: CdfMode, scenario: FaultScenario) -> ConformanceConfig {
    ConformanceConfig {
        duration: 60.0,
        warmup: 10.0,
        ..ConformanceConfig::new(SEED, mode, scenario)
    }
}

/// Runs one case, asserts every invariant, and cross-checks the trace
/// against the run's metrics snapshot.
fn check_case(mode: CdfMode, scenario: FaultScenario) {
    let (r, events) = run_conformance_traced(quick_case(mode, scenario));
    let label = format!("{}/{}", r.mode, r.scenario);
    assert!(!events.is_empty(), "{label}: empty trace");
    assert_invariants(&events, &label);

    // The trace and the always-on metrics describe the same run.
    let dispatches = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Dispatch { .. }))
        .count() as u64;
    let delivers = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Deliver { .. }))
        .count() as u64;
    let metrics = &r.report.metrics;
    assert!(metrics.conserved(), "{label}: metrics books don't balance");
    assert_eq!(
        dispatches,
        metrics.streams.iter().map(|s| s.dispatched).sum::<u64>(),
        "{label}: dispatch events vs counter"
    );
    assert_eq!(
        delivers,
        metrics.streams.iter().map(|s| s.delivered).sum::<u64>(),
        "{label}: deliver events vs counter"
    );
    let blocked = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::PathBlocked { .. }))
        .count() as u64;
    assert_eq!(
        blocked,
        r.report.path_blocked_events.iter().sum::<u64>(),
        "{label}: blocked events vs report"
    );
    // Every delivery the report counted is in the trace.
    assert_eq!(
        delivers,
        r.report
            .streams
            .iter()
            .map(|s| s.delivered_packets)
            .sum::<u64>(),
        "{label}: deliver events vs stream reports"
    );

    // Fault observability inside the trace itself: faulted scenarios
    // must exercise the backoff machinery, and every backoff step needs
    // a same-instant PathBlocked trigger.
    let backoff_steps: Vec<(u64, u32)> = events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::BackoffStep { at_ns, path, .. } => Some((at_ns, path)),
            _ => None,
        })
        .collect();
    if scenario == FaultScenario::NoFault {
        assert!(backoff_steps.is_empty(), "{label}: backoff without faults");
    } else {
        assert!(!backoff_steps.is_empty(), "{label}: faults left no backoff");
        for &(t, p) in &backoff_steps {
            assert!(
                events
                    .iter()
                    .any(|e| matches!(*e, TraceEvent::PathBlocked { at_ns, path, .. }
                        if at_ns == t && path == p)),
                "{label}: backoff step at {t} on path {p} with no blocked detection"
            );
        }
    }
}

#[test]
fn invariants_exact_mode_all_scenarios() {
    for scenario in FaultScenario::ALL {
        check_case(CdfMode::Exact, scenario);
    }
}

#[test]
fn invariants_rolling_mode_all_scenarios() {
    for scenario in FaultScenario::ALL {
        check_case(CdfMode::Rolling, scenario);
    }
}

#[test]
fn invariants_sketch_mode_all_scenarios() {
    for scenario in FaultScenario::ALL {
        check_case(CdfMode::Sketch { markers: 33 }, scenario);
    }
}

#[test]
fn matrix_spans_twelve_cases() {
    // The three tests above cover sweep_modes() × FaultScenario::ALL.
    assert_eq!(sweep_modes().len() * FaultScenario::ALL.len(), 12);
}

#[test]
fn traced_run_matches_untraced_run() {
    // Attaching a trace must not change a single scheduling decision:
    // the traced and untraced runs of the same case are bit-identical.
    let cfg = quick_case(CdfMode::Exact, FaultScenario::Flap);
    let (traced, _) = run_conformance_traced(cfg);
    let untraced = iqpaths_testkit::run_conformance(cfg);
    assert_eq!(traced.report.events, untraced.report.events);
    assert_eq!(
        traced.report.path_sent_bytes,
        untraced.report.path_sent_bytes
    );
    assert_eq!(
        traced.report.path_blocked_events,
        untraced.report.path_blocked_events
    );
    assert_eq!(traced.report.metrics, untraced.report.metrics);
    for (a, b) in traced.report.streams.iter().zip(&untraced.report.streams) {
        assert_eq!(a.throughput_series, b.throughput_series);
        assert_eq!(a.delivered_packets, b.delivered_packets);
    }
}
