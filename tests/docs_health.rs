//! Docs-health gate: every intra-repo markdown link in the top-level
//! documentation must resolve to a file that exists.
//!
//! The docs form a cross-linked surface (README → docs/POLICIES.md →
//! DESIGN.md §15 → EXPERIMENTS.md); a rename that breaks one of those
//! links would otherwise go unnoticed until a reader hits a 404. This
//! test walks `[text](target)` links in the checked markdown files,
//! skips external (`http(s)://`, `mailto:`) targets, strips `#anchor`
//! fragments, resolves the rest relative to the linking file's
//! directory, and fails listing every dangling target.

use std::path::{Path, PathBuf};

/// The markdown files whose link graph is under the gate.
const DOCS: &[&str] = &[
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/POLICIES.md",
];

/// Extracts inline markdown link targets (`[text](target)` and images
/// `![alt](target)`) from `body`. Fenced code blocks are skipped so
/// example snippets can't false-positive.
fn link_targets(body: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut in_fence = false;
    for line in body.lines() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                // Backtrack: only count it as a link if a `[` opened it
                // on this line (good enough for this repo's docs).
                if line[..i].contains('[') {
                    if let Some(rel_end) = line[i + 2..].find(')') {
                        out.push(line[i + 2..i + 2 + rel_end].to_string());
                        i += 2 + rel_end;
                        continue;
                    }
                }
            }
            i += 1;
        }
    }
    out
}

fn is_external(target: &str) -> bool {
    target.starts_with("http://") || target.starts_with("https://") || target.starts_with("mailto:")
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for doc in DOCS {
        let path = root.join(doc);
        let body =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {doc}: {e}"));
        let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
        for target in link_targets(&body) {
            if is_external(&target) {
                continue;
            }
            // Strip a `#anchor` fragment; a pure-anchor link points at
            // the current file and always resolves.
            let file_part = target.split('#').next().unwrap_or("");
            if file_part.is_empty() {
                continue;
            }
            let resolved: PathBuf = if let Some(rest) = file_part.strip_prefix('/') {
                root.join(rest)
            } else {
                dir.join(file_part)
            };
            checked += 1;
            if !resolved.exists() {
                broken.push(format!("{doc}: [{target}] -> {}", resolved.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken intra-repo markdown links:\n  {}",
        broken.join("\n  ")
    );
    // The gate is vacuous if the scanner stops finding links at all.
    assert!(
        checked > 0,
        "no intra-repo links found across {DOCS:?} — scanner regression?"
    );
}

#[test]
fn link_scanner_handles_the_shapes_we_use() {
    let targets = link_targets(
        "see [policies](docs/POLICIES.md) and [web](https://example.com)\n\
         ```\n[not a link](ignored.md)\n```\n\
         ![img](fig/plot.png) plus [anchor](#section) and [both](A.md#x)",
    );
    assert_eq!(
        targets,
        vec![
            "docs/POLICIES.md",
            "https://example.com",
            "fig/plot.png",
            "#section",
            "A.md#x",
        ]
    );
}
