//! End-to-end integration tests over the full stack: workloads →
//! scheduler → emulated Figure 8 testbed → reports.
//!
//! Durations are kept short (the shapes assert direction, not the
//! paper's exact magnitudes — those are the bench harnesses' job).

use iq_paths::apps::gridftp::GridFtpConfig;
use iq_paths::apps::smartpointer::{SmartPointerConfig, ATOM, BOND1, BOND2};
use iq_paths::middleware::builder::{Figure8Experiment, SchedulerKind};

fn quick(duration: f64) -> Figure8Experiment {
    let mut e = Figure8Experiment::new(42, duration);
    e.runtime.warmup_secs = 20.0;
    e
}

#[test]
fn pgos_meets_critical_targets_where_msfq_slips() {
    let e = quick(30.0);
    let app = SmartPointerConfig::default();
    let pgos = e.run_smartpointer(app, SchedulerKind::Pgos);
    let msfq = e.run_smartpointer(app, SchedulerKind::Msfq);
    for idx in [ATOM, BOND1] {
        let gp = pgos.report.streams[idx].summary();
        let gm = msfq.report.streams[idx].summary();
        assert!(
            gp.meet_fraction >= gm.meet_fraction,
            "stream {idx}: PGOS meet {} < MSFQ {}",
            gp.meet_fraction,
            gm.meet_fraction
        );
        assert!(
            gp.meet_fraction > 0.95,
            "PGOS must hold the 95% guarantee, got {}",
            gp.meet_fraction
        );
    }
}

#[test]
fn pgos_does_not_starve_best_effort() {
    let e = quick(30.0);
    let app = SmartPointerConfig::default();
    let pgos = e.run_smartpointer(app, SchedulerKind::Pgos);
    let msfq = e.run_smartpointer(app, SchedulerKind::Msfq);
    let bp = pgos.report.streams[BOND2].mean_throughput();
    let bm = msfq.report.streams[BOND2].mean_throughput();
    // "the average throughput of stream Bond2 is almost the same as that
    // achieved by MSFQ".
    assert!(
        (bp - bm).abs() / bm < 0.1,
        "Bond2 under PGOS {bp} deviates from MSFQ {bm}"
    );
}

#[test]
fn wfq_on_one_path_underperforms_overlay_schedulers() {
    let e = quick(30.0);
    let app = SmartPointerConfig::default();
    let wfq = e.run_smartpointer(app, SchedulerKind::Wfq);
    let pgos = e.run_smartpointer(app, SchedulerKind::Pgos);
    let w = wfq.report.streams[BOND1].summary();
    let p = pgos.report.streams[BOND1].summary();
    assert!(w.attained_95 < p.attained_95);
    // All WFQ traffic rode path A.
    assert_eq!(wfq.report.path_sent_bytes[1], 0);
    assert!(pgos.report.path_sent_bytes[1] > 0);
}

#[test]
fn optsched_is_at_least_as_good_as_pgos() {
    let e = quick(30.0);
    let app = SmartPointerConfig::default();
    let pgos = e.run_smartpointer(app, SchedulerKind::Pgos);
    let opt = e.run_smartpointer(app, SchedulerKind::OptSched);
    for idx in [ATOM, BOND1] {
        let gp = pgos.report.streams[idx].summary();
        let go = opt.report.streams[idx].summary();
        assert!(
            go.meet_fraction + 0.02 >= gp.meet_fraction,
            "oracle worse than PGOS on stream {idx}"
        );
    }
}

#[test]
fn pgos_reduces_frame_jitter_vs_msfq() {
    let e = quick(30.0);
    let app = SmartPointerConfig::default();
    let pgos = e.run_smartpointer(app, SchedulerKind::Pgos);
    let msfq = e.run_smartpointer(app, SchedulerKind::Msfq);
    let pj = pgos.frame_jitter[0].max(pgos.frame_jitter[1]);
    let mj = msfq.frame_jitter[0].max(msfq.frame_jitter[1]);
    assert!(pj <= mj, "PGOS jitter {pj} > MSFQ jitter {mj}");
}

#[test]
fn iqpg_gridftp_stabilizes_dt1() {
    let e = quick(30.0);
    let app = GridFtpConfig::default();
    let blocked = e.run_gridftp(app, SchedulerKind::GridFtpBlocked);
    let iqpg = e.run_gridftp(app, SchedulerKind::Pgos);
    let b = blocked.report.streams[0].summary();
    let p = iqpg.report.streams[0].summary();
    // The paper's Figure 12 comparison: same mean, much smaller stddev.
    assert!(
        p.stddev <= b.stddev,
        "IQPG stddev {} > blocked {}",
        p.stddev,
        b.stddev
    );
    assert!(p.meet_fraction >= b.meet_fraction);
    assert!((p.mean - b.mean).abs() / b.mean < 0.1);
}

#[test]
fn gridftp_record_rates_meet_slo_under_pgos() {
    let e = quick(30.0);
    let out = e.run_gridftp(GridFtpConfig::default(), SchedulerKind::Pgos);
    assert!(
        out.records_per_sec[0] > 24.0,
        "DT1 {:?}",
        out.records_per_sec
    );
    assert!(
        out.records_per_sec[1] > 24.0,
        "DT2 {:?}",
        out.records_per_sec
    );
    // DT3 is throttled by leftover bandwidth, below its 25/s offer.
    assert!(out.records_per_sec[2] < 25.0);
}

#[test]
fn partitioned_layout_is_worst_for_pinned_streams() {
    let e = quick(30.0);
    let part = e.run_gridftp(GridFtpConfig::default(), SchedulerKind::GridFtpPartitioned);
    let iqpg = e.run_gridftp(GridFtpConfig::default(), SchedulerKind::Pgos);
    assert!(
        part.records_per_sec[0] <= iqpg.records_per_sec[0] + 0.1,
        "partitioned {:?} beats PGOS {:?}",
        part.records_per_sec,
        iqpg.records_per_sec
    );
}
