//! Graph-scale many-tenant conformance matrix.
//!
//! {64, 256} nodes × {8, 64} tenants, each at shards {1, 4}: every
//! tenant — routed over Yen's k cheapest loopless paths of a seeded
//! Waxman overlay, under shared-bottleneck contention, a flash-crowd
//! wave and relay churn — must pass its Lemma 1/2 checks, and the
//! 4-shard data plane must reproduce the serial execution strategy's
//! report byte-for-byte ([`ScalabilityReport::render`] is the compare
//! surface).
//!
//! On divergence the suite writes both sides' rendered reports under
//! `target/experiments/scalability/` (CI uploads them as artifacts)
//! before panicking.

use iqpaths_middleware::ShardExecution;
use iqpaths_testkit::{run_scalability_with, GraphModel, ScalabilityConfig, ScalabilityReport};
use std::fs;
use std::path::PathBuf;

/// Pinned seed for the whole matrix.
const SEED: u64 = 2024;

/// One matrix cell's config: the shortest duration the wave/churn
/// script allows, so the full matrix stays CI-sized.
fn cfg(nodes: usize, tenants: usize, shards: usize) -> ScalabilityConfig {
    ScalabilityConfig {
        duration: 12.0,
        warmup: 3.0,
        settle_secs: 3.0,
        ..ScalabilityConfig::new(
            SEED,
            GraphModel::by_name("waxman").unwrap(),
            nodes,
            tenants,
            2,
        )
        .with_shards(shards)
    }
}

fn artifact_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target/experiments/scalability")
}

/// Writes both sides of a divergence as readable artifacts and panics
/// with their locations.
fn divergence(cell: &str, left_label: &str, left: &str, right_label: &str, right: &str) -> ! {
    let dir = artifact_dir();
    fs::create_dir_all(&dir).unwrap();
    let lp = dir.join(format!("{cell}.{left_label}.txt"));
    let rp = dir.join(format!("{cell}.{right_label}.txt"));
    fs::write(&lp, left).unwrap();
    fs::write(&rp, right).unwrap();
    panic!(
        "{cell}: {left_label} and {right_label} diverged; \
         divergence artifacts at {} and {}",
        lp.display(),
        rp.display()
    );
}

fn assert_every_tenant_conforms(cell: &str, r: &ScalabilityReport, tenants: usize) {
    assert_eq!(r.tenants.len(), tenants, "{cell}: tenant count");
    for t in &r.tenants {
        assert!(t.routes >= 1, "{cell}: tenant {} got no route", t.tenant);
        assert!(
            t.delivered_packets > 0,
            "{cell}: tenant {} starved",
            t.tenant
        );
        // One Lemma 1 (probabilistic) + one Lemma 2 (violation-bound)
        // verdict per tenant; best-effort streams assert nothing.
        assert_eq!(t.outcomes.len(), 2, "{cell}: tenant {}", t.tenant);
    }
    assert!(
        r.all_pass(),
        "{cell}: tenants {:?} failed a lemma check:\n{}",
        r.failing_tenants(),
        r.render()
    );
}

/// Runs one (nodes, tenants) cell across the shard axis.
fn assert_cell(nodes: usize, tenants: usize) {
    let cell = format!("waxman_{nodes}n_{tenants}t");

    // Serial data plane: the reference.
    let serial = run_scalability_with(cfg(nodes, tenants, 1), ShardExecution::Parallel);
    assert_every_tenant_conforms(&format!("{cell}_sh1"), &serial, tenants);

    // 4-shard data plane, both worker-execution strategies: the merged
    // outcome may not depend on thread scheduling…
    let sh4_serial = run_scalability_with(cfg(nodes, tenants, 4), ShardExecution::Serial);
    let sh4_parallel = run_scalability_with(cfg(nodes, tenants, 4), ShardExecution::Parallel);
    if sh4_serial.render() != sh4_parallel.render() {
        divergence(
            &format!("{cell}_sh4"),
            "serial-exec",
            &sh4_serial.render(),
            "parallel-exec",
            &sh4_parallel.render(),
        );
    }
    assert_every_tenant_conforms(&format!("{cell}_sh4"), &sh4_parallel, tenants);

    // …and sharding never changes the compiled experiment: same graph,
    // same routes, same offered load per tenant.
    assert_eq!(serial.graph_hash, sh4_parallel.graph_hash, "{cell}");
    assert_eq!(serial.edges, sh4_parallel.edges, "{cell}");
    assert_eq!(serial.total_routes, sh4_parallel.total_routes, "{cell}");
    for (a, b) in serial.tenants.iter().zip(&sh4_parallel.tenants) {
        assert_eq!((a.src, a.dst, a.routes), (b.src, b.dst, b.routes), "{cell}");
    }
}

#[test]
fn waxman_64_nodes_8_tenants() {
    assert_cell(64, 8);
}

#[test]
fn waxman_64_nodes_64_tenants() {
    assert_cell(64, 64);
}

#[test]
fn waxman_256_nodes_8_tenants() {
    assert_cell(256, 8);
}

#[test]
fn waxman_256_nodes_64_tenants() {
    assert_cell(256, 64);
}

#[test]
fn sharded_runs_are_repeatable() {
    // Two identical 4-shard runs serialize byte-identically — the
    // precondition for the golden scalability trace to be meaningful.
    let a = run_scalability_with(cfg(64, 8, 4), ShardExecution::Parallel);
    let b = run_scalability_with(cfg(64, 8, 4), ShardExecution::Parallel);
    assert_eq!(a.render(), b.render());
}
