//! Probe-budget conformance matrix: `{periodic, active} planners ×
//! {100, 25, 10}% budgets × {flap, blackout, churn} scenarios × {1, 4}
//! shards`.
//!
//! Each case asserts three things:
//!
//! * **Verdicts** — the `ActivePlanner` keeps the Lemma 1/2 guarantees
//!   at every swept budget, and the `PeriodicPlanner` keeps them at the
//!   full probe rate (the unlimited-equivalent baseline). Budgeted
//!   periodic cases are executed but not gated: blindly thinning a
//!   round-robin schedule is exactly the policy the active planner
//!   exists to beat.
//! * **Spend** — the planner's published probe counts hit the budget's
//!   pro-rata share to within one probe per path (the Bresenham
//!   allowance is exact, not approximate).
//! * **Serial ≡ sharded byte-equality** — on the 4-shard data plane the
//!   serial and parallel worker-execution strategies must produce
//!   byte-identical conformance reports. A divergence writes both
//!   renderings under `target/experiments/probe_budget/` for CI upload
//!   before failing.

use iqpaths_middleware::ShardExecution;
use iqpaths_overlay::node::CdfMode;
use iqpaths_overlay::planner::{PlannerKind, ProbeBudget};
use iqpaths_testkit::{
    run_conformance, run_conformance_with, ConformanceConfig, ConformanceReport, FaultScenario,
};
use std::path::PathBuf;

/// Pinned seed, matching the conformance job.
const SEED: u64 = 11;

/// The planner × budget axis (percent; 100 ≙ the legacy rate).
const CONFIGS: [(PlannerKind, u32); 6] = [
    (PlannerKind::Periodic, 100),
    (PlannerKind::Periodic, 25),
    (PlannerKind::Periodic, 10),
    (PlannerKind::Active, 100),
    (PlannerKind::Active, 25),
    (PlannerKind::Active, 10),
];

fn case(scenario: FaultScenario, planner: PlannerKind, budget_pct: u32) -> ConformanceConfig {
    ConformanceConfig {
        duration: 60.0,
        warmup: 10.0,
        ..ConformanceConfig::new(SEED, CdfMode::Exact, scenario)
    }
    .with_planner(planner, ProbeBudget::percent(budget_pct))
}

fn artifact_dir() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/target/experiments/probe_budget"
    ))
}

/// Byte-compares the serial- and parallel-execution renderings of one
/// sharded case, dumping both under `target/experiments/probe_budget/`
/// on divergence.
fn assert_strategy_byte_equality(label: &str, a: &ConformanceReport, b: &ConformanceReport) {
    let (sa, sb) = (format!("{:#?}", a.report), format!("{:#?}", b.report));
    if sa != sb || a.probe_counts != b.probe_counts {
        let dir = artifact_dir();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{label}.serial.txt")), &sa).unwrap();
        std::fs::write(dir.join(format!("{label}.parallel.txt")), &sb).unwrap();
        panic!(
            "{label}: serial and parallel worker execution diverged \
             (renderings dumped under {})",
            dir.display()
        );
    }
}

fn check_scenario(scenario: FaultScenario) {
    // Budget accounting is judged against the full-rate probe count of
    // the same planner, so the Bresenham share check is exact.
    let mut full_total: Option<u64> = None;
    for (planner, budget_pct) in CONFIGS {
        let label = format!("{}-{}-{budget_pct}", scenario.name(), planner.name());
        let cfg = case(scenario, planner, budget_pct);

        // Serial (shards = 1) run: verdicts + spend.
        let serial = run_conformance(cfg);
        let total: u64 = serial.probe_counts.iter().sum();
        if budget_pct == 100 {
            // Both planners spend the identical full-rate total.
            match full_total {
                None => full_total = Some(total),
                Some(t) => assert_eq!(total, t, "{label}: full-rate totals differ by planner"),
            }
        }
        let full = full_total.expect("100% case runs first") as f64;
        let share = total as f64 / full;
        let want = f64::from(budget_pct) / 100.0;
        assert!(
            (share - want).abs() <= 3.0 / full.max(1.0) + 1e-9,
            "{label}: spent {share:.4} of the full rate, budget is {want:.2}"
        );

        let must_pass = planner == PlannerKind::Active || budget_pct == 100;
        if must_pass {
            for o in &serial.outcomes {
                assert!(
                    o.pass,
                    "{label}: {}/{} failed (observed {:.3}, target {:.3}, ε {:.3})",
                    o.stream, o.kind, o.observed, o.target, o.epsilon
                );
            }
        }

        // Sharded (shards = 4) run: strategy byte-equality + verdicts.
        let sharded = cfg.with_shards(4);
        let a = run_conformance_with(sharded, ShardExecution::Serial);
        let b = run_conformance_with(sharded, ShardExecution::Parallel);
        assert_strategy_byte_equality(&label, &a, &b);
        if must_pass {
            assert!(
                a.all_pass(),
                "{label}: sharded run failed conformance: {:?}",
                a.outcomes
            );
        }
    }
}

#[test]
fn probe_budget_matrix_flap() {
    check_scenario(FaultScenario::Flap);
}

#[test]
fn probe_budget_matrix_blackout() {
    check_scenario(FaultScenario::Blackout);
}

#[test]
fn probe_budget_matrix_churn() {
    check_scenario(FaultScenario::Churn);
}
