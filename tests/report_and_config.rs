//! Report serialization and experiment-builder configuration plumbing.

use iq_paths::apps::smartpointer::SmartPointerConfig;
use iq_paths::middleware::builder::{Figure8Experiment, SchedulerKind};

fn tiny() -> Figure8Experiment {
    let mut e = Figure8Experiment::new(5, 10.0);
    e.runtime.warmup_secs = 10.0;
    e.runtime.history_samples = 50;
    e
}

#[test]
fn reports_serialize_to_json_compatible_structures() {
    // RunReport derives Serialize; round-trip through the serde data
    // model (serde_json is not a dependency, so use the CSV/Debug
    // surfaces plus serde's derive contract via serde_test-free check:
    // serializing into a string via the `serde` `Serialize` impl using
    // the `ser` trait with a minimal writer is out of scope — instead
    // assert the CSV artifacts, which are the shipped format).
    let out = tiny().run_smartpointer(SmartPointerConfig::default(), SchedulerKind::Pgos);
    let series_csv = out.report.series_csv();
    // Header + one row per (stream, window).
    let expected_rows: usize = out
        .report
        .streams
        .iter()
        .map(|s| s.throughput_series.len())
        .sum();
    assert_eq!(series_csv.lines().count(), 1 + expected_rows);
    let cdf_csv = out.report.cdf_csv();
    assert!(cdf_csv.starts_with("stream,throughput_bps,cdf"));
    let table = out.report.summary_table();
    for s in &out.report.streams {
        assert!(table.contains(&s.name), "summary table missing {}", s.name);
    }
}

#[test]
fn runtime_config_knobs_propagate() {
    let mut e = tiny();
    e.runtime.monitor_window_secs = 0.5;
    let out = e.run_smartpointer(SmartPointerConfig::default(), SchedulerKind::Pgos);
    // 10 s at 0.5 s windows → 20 samples per stream.
    assert_eq!(out.report.streams[0].throughput_series.len(), 20);
    assert_eq!(out.report.monitor_window, 0.5);
}

#[test]
fn pgos_window_config_propagates_through_builder() {
    let mut e = tiny();
    e.runtime.window_secs = 0.5;
    e.pgos.window_secs = 0.5;
    let out = e.run_smartpointer(SmartPointerConfig::default(), SchedulerKind::Pgos);
    // Still meets its guarantees at the shorter scheduling window.
    assert!(out.report.streams[0].summary().meet_fraction > 0.9);
}

#[test]
fn dwcs_through_the_builder_protects_critical_streams() {
    let e = tiny();
    let out = e.run_smartpointer(SmartPointerConfig::default(), SchedulerKind::Dwcs);
    assert_eq!(out.report.scheduler, "DWCS");
    // Single path only.
    assert_eq!(out.report.path_sent_bytes[1], 0);
    // Critical streams protected at the expense of Bond2.
    let atom = out.report.streams[0].summary();
    assert!(atom.meet_fraction > 0.9, "{}", atom.meet_fraction);
    let bond2 = &out.report.streams[2];
    assert!(bond2.mean_throughput() < 60.0e6);
}

#[test]
fn figure9_scheduler_list_is_the_paper_order() {
    use SchedulerKind::*;
    assert_eq!(SchedulerKind::FIGURE9, [Wfq, Msfq, Pgos, OptSched]);
}
