//! Validates the fluid cross-traffic substitution (DESIGN.md §2): a
//! full packet-level shared-FIFO bottleneck, fed the same offered loads,
//! must agree with the fluid residual-rate model on overlay throughput
//! and must bound the fluid model's optimism on delay.

use iq_paths::simnet::link::Link;
use iq_paths::simnet::packet::{Packet, StreamId};
use iq_paths::simnet::packetlevel::{PacketLevelLink, QueuedItem};
use iq_paths::simnet::time::{SimDuration, SimTime};
use iq_paths::simnet::EventQueue;
use iq_paths::traces::poisson::{generate, PoissonConfig};
use iq_paths::traces::RateTrace;

const CAPACITY: f64 = 100.0e6;
const PKT: u32 = 1250;

/// Drives a packet-level bottleneck: overlay CBR at `overlay_bps` plus
/// Poisson cross packets at `cross_bps`, for `duration` seconds.
/// Returns (overlay delivered bits/s, mean overlay queueing delay).
fn run_packet_level(overlay_bps: f64, cross_bps: f64, duration: f64, seed: u64) -> (f64, f64) {
    #[derive(Clone, Copy)]
    enum Ev {
        OverlayArrival,
        CrossArrival,
        TxDone,
    }
    let mut link = PacketLevelLink::new(CAPACITY, SimDuration::from_millis(1), 4096);
    let mut events: EventQueue<Ev> = EventQueue::new();
    // Cross packets: pre-generate arrival times from a Poisson trace at
    // 1 ms epochs (each epoch's bits → packets at the epoch start).
    let cross_trace = generate(
        &PoissonConfig {
            mean_rate: cross_bps.max(1.0),
            packet_bytes: PKT as f64,
        },
        0.001,
        duration,
        seed,
    );
    let mut cross_arrivals: Vec<SimTime> = Vec::new();
    if cross_bps > 0.0 {
        for (i, &r) in cross_trace.rates().iter().enumerate() {
            let pkts = (r * 0.001 / (PKT as f64 * 8.0)).round() as usize;
            // Spread the epoch's packets uniformly across the epoch —
            // clumping them at the epoch start would make them lose
            // every buffer race against the evenly spaced overlay CBR.
            for k in 0..pkts {
                cross_arrivals.push(SimTime::from_secs_f64(
                    (i as f64 + (k as f64 + 0.5) / pkts as f64) * 0.001,
                ));
            }
        }
    }
    for &at in &cross_arrivals {
        events.schedule(at, Ev::CrossArrival);
    }
    // Overlay CBR.
    let overlay_interval = PKT as f64 * 8.0 / overlay_bps;
    events.schedule(SimTime::ZERO, Ev::OverlayArrival);

    let mut seq = 0u64;
    let mut next_overlay = 0.0f64;
    let mut delivered_bits = 0.0f64;
    let mut delay_sum = 0.0f64;
    let mut delivered_pkts = 0u64;
    let end = SimTime::from_secs_f64(duration);

    let mut kick = |link: &mut PacketLevelLink, events: &mut EventQueue<Ev>, now: SimTime| {
        if let Some(dep) = link.poll_start(now) {
            events.schedule(dep.finished, Ev::TxDone);
            if let QueuedItem::Overlay(p) = dep.item {
                delivered_bits += p.bits();
                delay_sum += dep.finished.since(p.created).as_secs_f64();
                delivered_pkts += 1;
            }
        }
    };

    while let Some((now, ev)) = events.pop_until(end) {
        match ev {
            Ev::OverlayArrival => {
                let pkt = Packet::best_effort(StreamId(0), seq, PKT, now);
                seq += 1;
                link.enqueue(QueuedItem::Overlay(pkt), now);
                next_overlay += overlay_interval;
                events.schedule(SimTime::from_secs_f64(next_overlay), Ev::OverlayArrival);
                kick(&mut link, &mut events, now);
            }
            Ev::CrossArrival => {
                link.enqueue(QueuedItem::Cross(PKT), now);
                kick(&mut link, &mut events, now);
            }
            Ev::TxDone => kick(&mut link, &mut events, now),
        }
    }
    (
        delivered_bits / duration,
        if delivered_pkts == 0 {
            0.0
        } else {
            delay_sum / delivered_pkts as f64
        },
    )
}

/// The fluid model's throughput for the same scenario.
fn run_fluid(overlay_bps: f64, cross_bps: f64, duration: f64) -> f64 {
    let link = Link::new("fluid", CAPACITY, SimDuration::from_millis(1))
        .with_cross_traffic(RateTrace::constant(0.001, cross_bps, duration));
    // Serve back-to-back CBR packets; count how many finish by `end`.
    let mut t = 0.0f64;
    let mut next_arrival = 0.0f64;
    let overlay_interval = PKT as f64 * 8.0 / overlay_bps;
    let mut delivered = 0u64;
    while next_arrival < duration {
        let start = t.max(next_arrival);
        let finish = link.finish_time(start, PKT as f64 * 8.0);
        if finish > duration {
            break;
        }
        delivered += 1;
        t = finish;
        next_arrival += overlay_interval;
    }
    delivered as f64 * PKT as f64 * 8.0 / duration
}

#[test]
fn fluid_and_packet_level_agree_when_underloaded() {
    // 30 Mbps overlay + 40 Mbps cross on a 100 Mbps line.
    let (pl_tp, pl_delay) = run_packet_level(30.0e6, 40.0e6, 20.0, 7);
    let fl_tp = run_fluid(30.0e6, 40.0e6, 20.0);
    assert!(
        (pl_tp - fl_tp).abs() / fl_tp < 0.02,
        "packet-level {pl_tp} vs fluid {fl_tp}"
    );
    // Underloaded: queueing delay stays near one serialization time.
    assert!(pl_delay < 0.002, "delay {pl_delay}");
}

#[test]
fn both_models_cap_overlay_at_the_residual() {
    // 80 Mbps overlay + 50 Mbps cross: only ~50 Mbps residual.
    let (pl_tp, _) = run_packet_level(80.0e6, 50.0e6, 20.0, 9);
    let fl_tp = run_fluid(80.0e6, 50.0e6, 20.0);
    // Packet level: FIFO sharing gives the overlay roughly its offered
    // share of the line (80 of 130 offered → ~61 Mbps), never more than
    // line minus cross-served. The fluid model is the conservative
    // residual (≈ 50 Mbps). Both sit far below the 80 Mbps offer and
    // within the same regime.
    assert!(pl_tp < 70.0e6, "packet-level {pl_tp}");
    assert!((45.0e6..55.0e6).contains(&fl_tp), "fluid {fl_tp}");
    assert!(
        pl_tp >= fl_tp * 0.9,
        "fluid must not overstate the overlay's share: {pl_tp} vs {fl_tp}"
    );
}

#[test]
fn lossless_line_conserves_packets() {
    let (pl_tp, _) = run_packet_level(20.0e6, 0.0, 10.0, 3);
    assert!((pl_tp - 20.0e6).abs() / 20.0e6 < 0.01, "{pl_tp}");
}
